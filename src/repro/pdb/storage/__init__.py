"""Storage backends for x-relations.

Three interchangeable implementations of the :class:`XTupleStore`
protocol feed the detection pipeline:

* :class:`~repro.pdb.relations.XRelation` — the in-memory backend
  (every tuple resident, ``fetch`` hands out the existing objects);
* :class:`SpillingXTupleStore` — the out-of-core row backend over a
  directory of append-only JSONL segments with an LRU page cache
  (only ids and segment offsets resident);
* :class:`ColumnarXTupleStore` — the out-of-core columnar backend
  (per-attribute column files, mmap-backed reads, spill-time zone maps
  and key histograms) whose :meth:`~ColumnarXTupleStore.project` scans
  a subset of attributes without decoding the rest and whose
  :meth:`~ColumnarXTupleStore.statistics` feeds plan-time pruning.

Conversions: :func:`spill_relation` (``layout="rows"|"columnar"``) /
:meth:`XRelation.spill <repro.pdb.relations.XRelation.spill>` write a
store directory; :func:`repro.pdb.io.open_store` opens either form;
``materialize()`` loads a store back into memory.
"""

from repro.pdb.storage.base import (
    XTupleStore,
    fetch_tuples,
    project_xtuple,
)
from repro.pdb.storage.columnar import (
    COLUMNAR_LAYOUT,
    ColumnarProjection,
    ColumnarXTupleStore,
    spill_columnar,
)
from repro.pdb.storage.multi import (
    MultiSourceProjection,
    MultiSourceStore,
    combine_sources,
)
from repro.pdb.storage.session import (
    DELTA_SOURCE,
    SessionJournal,
    SessionProjection,
    SessionStore,
)
from repro.pdb.storage.spill import (
    DEFAULT_MAX_OPEN_SEGMENTS,
    DEFAULT_MAX_PAGES,
    DEFAULT_PAGE_SIZE,
    DEFAULT_SEGMENT_SIZE,
    MANIFEST_NAME,
    QUARANTINE_DIR,
    PageCacheInfo,
    QuarantinedSegment,
    SegmentCorruptionError,
    SegmentIntegrity,
    SpillingXTupleStore,
    StorageError,
    StoreVerification,
    spill_relation,
)
from repro.pdb.storage.stats import (
    AttributeStatistics,
    StatisticsBuilder,
    StoreStatistics,
    merge_statistics,
    ranges_overlap,
    relation_statistics,
)

__all__ = [
    "AttributeStatistics",
    "COLUMNAR_LAYOUT",
    "ColumnarProjection",
    "ColumnarXTupleStore",
    "DEFAULT_MAX_OPEN_SEGMENTS",
    "DEFAULT_MAX_PAGES",
    "DEFAULT_PAGE_SIZE",
    "DEFAULT_SEGMENT_SIZE",
    "DELTA_SOURCE",
    "MANIFEST_NAME",
    "MultiSourceProjection",
    "MultiSourceStore",
    "PageCacheInfo",
    "QUARANTINE_DIR",
    "QuarantinedSegment",
    "SegmentCorruptionError",
    "SegmentIntegrity",
    "SessionJournal",
    "SessionProjection",
    "SessionStore",
    "SpillingXTupleStore",
    "StatisticsBuilder",
    "StorageError",
    "StoreStatistics",
    "StoreVerification",
    "XTupleStore",
    "combine_sources",
    "fetch_tuples",
    "merge_statistics",
    "project_xtuple",
    "ranges_overlap",
    "relation_statistics",
    "spill_columnar",
    "spill_relation",
]
