"""Exception hierarchy for the probabilistic database substrate.

All errors raised by :mod:`repro.pdb` derive from :class:`ProbabilisticDataError`
so callers can catch substrate problems with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ProbabilisticDataError(Exception):
    """Base class for all errors raised by the probabilistic data model."""


class InvalidProbabilityError(ProbabilisticDataError):
    """A probability is outside ``(0, 1]`` or a distribution exceeds mass 1."""


class EmptyDistributionError(ProbabilisticDataError):
    """A probabilistic value or x-tuple was constructed with no outcomes."""


class SchemaMismatchError(ProbabilisticDataError):
    """Tuples or relations with incompatible schemas were combined."""


class UnknownAttributeError(ProbabilisticDataError, KeyError):
    """An attribute name is not part of the relation schema."""


class DuplicateTupleIdError(ProbabilisticDataError):
    """Two tuples in one relation share the same identifier."""


class WorldEnumerationError(ProbabilisticDataError):
    """Possible-world enumeration would exceed the configured safety bound."""


class ConditioningError(ProbabilisticDataError):
    """Conditioning on an event of probability zero was requested."""


class StorageError(ProbabilisticDataError):
    """Missing, malformed or inconsistent on-disk relation storage."""


class SegmentCorruptionError(StorageError):
    """A segment file's bytes no longer match its manifest checksum.

    Carries enough context to act on: ``segment_file`` (absolute path),
    ``expected_crc`` / ``actual_crc``, and ``tuple_ids`` (the tuples the
    manifest locates in the segment) — exactly what
    :meth:`SpillingXTupleStore.quarantine
    <repro.pdb.storage.spill.SpillingXTupleStore.quarantine>` needs to
    isolate the damage.
    """

    def __init__(
        self,
        message: str,
        *,
        segment_file: str,
        expected_crc: int | None = None,
        actual_crc: int | None = None,
        tuple_ids: tuple[str, ...] = (),
    ) -> None:
        super().__init__(message)
        self.segment_file = segment_file
        self.expected_crc = expected_crc
        self.actual_crc = actual_crc
        self.tuple_ids = tuple_ids
