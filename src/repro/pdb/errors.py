"""Exception hierarchy for the probabilistic database substrate.

All errors raised by :mod:`repro.pdb` derive from :class:`ProbabilisticDataError`
so callers can catch substrate problems with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ProbabilisticDataError(Exception):
    """Base class for all errors raised by the probabilistic data model."""


class InvalidProbabilityError(ProbabilisticDataError):
    """A probability is outside ``(0, 1]`` or a distribution exceeds mass 1."""


class EmptyDistributionError(ProbabilisticDataError):
    """A probabilistic value or x-tuple was constructed with no outcomes."""


class SchemaMismatchError(ProbabilisticDataError):
    """Tuples or relations with incompatible schemas were combined."""


class UnknownAttributeError(ProbabilisticDataError, KeyError):
    """An attribute name is not part of the relation schema."""


class DuplicateTupleIdError(ProbabilisticDataError):
    """Two tuples in one relation share the same identifier."""


class WorldEnumerationError(ProbabilisticDataError):
    """Possible-world enumeration would exceed the configured safety bound."""


class ConditioningError(ProbabilisticDataError):
    """Conditioning on an event of probability zero was requested."""


class StorageError(ProbabilisticDataError):
    """Missing, malformed or inconsistent on-disk relation storage."""
