"""Possible-world semantics for x-relations.

A probabilistic database is formally ``PDB = (W, P)`` with possible worlds
``W = {I1, …, In}`` and a probability distribution ``P`` over them
(Section IV).  For x-relations, a world picks at most one alternative per
x-tuple (none, if the x-tuple is a maybe tuple and is absent); world
probabilities are products because x-tuples are independent.

This module provides

* exhaustive enumeration (:func:`enumerate_worlds`) with a safety bound —
  used to reproduce Figure 7's eight worlds of ``{t32, t42}``;
* enumeration restricted to worlds containing *all* tuples
  (:func:`enumerate_full_worlds`) — the multi-pass reduction of
  Section V-A.1 only considers such worlds ("each tuple has to be
  assigned to a key value");
* Monte-Carlo sampling (:func:`sample_world`) for relations whose world
  count explodes;
* the most probable world (:func:`most_probable_world`), which underlies
  the certain-key strategy of Section V-A.2;
* world similarity/distance, needed to pick "highly probable and pairwise
  dissimilar worlds" (Section V-A.1).
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass

from repro.pdb.errors import WorldEnumerationError
from repro.pdb.relations import XRelation
from repro.pdb.values import ProbabilisticValue
from repro.pdb.xtuples import TupleAlternative, XTuple

#: Default ceiling on exhaustively enumerated worlds.
DEFAULT_MAX_WORLDS = 1_000_000


@dataclass(frozen=True)
class PossibleWorld:
    """One possible world: a choice of alternative per present x-tuple.

    Attributes
    ----------
    selection:
        Mapping from tuple id to the index of the chosen alternative.
        Absent (maybe) tuples simply do not appear in the mapping.
    probability:
        The world's probability ``P(I)``.
    """

    selection: tuple[tuple[str, int], ...]
    probability: float

    @property
    def tuple_ids(self) -> tuple[str, ...]:
        """Ids of the x-tuples present in this world."""
        return tuple(tid for tid, _ in self.selection)

    def alternative_index(self, tuple_id: str) -> int | None:
        """Index of the chosen alternative, or ``None`` if absent."""
        for tid, index in self.selection:
            if tid == tuple_id:
                return index
        return None

    def contains(self, tuple_id: str) -> bool:
        """Whether *tuple_id* is present in this world."""
        return any(tid == tuple_id for tid, _ in self.selection)

    def instantiate(
        self, xtuples: Mapping[str, XTuple]
    ) -> dict[str, TupleAlternative]:
        """Materialize the world as ``tuple id → chosen alternative``."""
        return {
            tid: xtuples[tid].alternatives[index]
            for tid, index in self.selection
        }

    def __repr__(self) -> str:
        body = ", ".join(f"{tid}[{idx}]" for tid, idx in self.selection)
        return f"PossibleWorld({{{body}}}, P={self.probability:g})"


def _choices(xtuple: XTuple) -> list[tuple[int | None, float]]:
    """Alternative choices of one x-tuple, including possible absence."""
    options: list[tuple[int | None, float]] = [
        (index, alt.probability)
        for index, alt in enumerate(xtuple.alternatives)
    ]
    absence = xtuple.absence_probability
    if absence > 0.0:
        options.append((None, absence))
    return options


def world_count(xtuples: Iterable[XTuple]) -> int:
    """Number of possible worlds without enumerating them."""
    count = 1
    for xtuple in xtuples:
        per_tuple = len(xtuple.alternatives)
        if xtuple.absence_probability > 0.0:
            per_tuple += 1
        count *= per_tuple
    return count


def enumerate_worlds(
    xtuples: Sequence[XTuple] | XRelation,
    *,
    max_worlds: int = DEFAULT_MAX_WORLDS,
) -> Iterator[PossibleWorld]:
    """Exhaustively enumerate all possible worlds.

    Worlds are yielded in lexicographic order of alternative indices, so
    the first yielded world picks each x-tuple's first alternative — the
    ordering used by the paper's Figure 7.

    Raises
    ------
    WorldEnumerationError
        If the number of worlds exceeds *max_worlds*.
    """
    xtuple_list = list(xtuples)
    total = world_count(xtuple_list)
    if total > max_worlds:
        raise WorldEnumerationError(
            f"{total} possible worlds exceed the bound of {max_worlds}; "
            "use sample_world() or most_probable_world() instead"
        )
    choice_lists = [_choices(xt) for xt in xtuple_list]
    for combo in itertools.product(*choice_lists):
        probability = 1.0
        selection: list[tuple[str, int]] = []
        for xtuple, (index, prob) in zip(xtuple_list, combo):
            probability *= prob
            if index is not None:
                selection.append((xtuple.tuple_id, index))
        yield PossibleWorld(tuple(selection), probability)


def enumerate_full_worlds(
    xtuples: Sequence[XTuple] | XRelation,
    *,
    max_worlds: int = DEFAULT_MAX_WORLDS,
    renormalize: bool = True,
) -> list[PossibleWorld]:
    """Worlds containing *all* x-tuples, conditioned on that event.

    Section V-A.1: "since tuple membership should not influence the
    duplicate detection process and each tuple has to be assigned to a key
    value, only possible worlds containing all tuples have to be
    considered."  With ``renormalize=True`` the returned probabilities are
    conditional probabilities ``P(I | B)`` that sum to 1.
    """
    xtuple_list = list(xtuples)
    full = [
        world
        for world in enumerate_worlds(xtuple_list, max_worlds=max_worlds)
        if len(world.selection) == len(xtuple_list)
    ]
    if not renormalize:
        return full
    mass = sum(world.probability for world in full)
    if mass <= 0.0:
        return []
    return [
        PossibleWorld(world.selection, world.probability / mass)
        for world in full
    ]


def most_probable_world(
    xtuples: Sequence[XTuple] | XRelation,
    *,
    require_all: bool = True,
) -> PossibleWorld:
    """The modal world, computed per-tuple (x-tuples are independent).

    With ``require_all=True`` absence is not an option, matching the
    certain-key strategy of Section V-A.2 ("choosing the most probable
    alternatives … is equivalent to take the most probable world").
    """
    probability = 1.0
    selection: list[tuple[str, int]] = []
    for xtuple in xtuples:
        best_index, best_prob = max(
            enumerate(alt.probability for alt in xtuple.alternatives),
            key=lambda pair: pair[1],
        )
        if not require_all and xtuple.absence_probability > best_prob:
            probability *= xtuple.absence_probability
            continue
        probability *= best_prob
        selection.append((xtuple.tuple_id, best_index))
    return PossibleWorld(tuple(selection), probability)


def sample_world(
    xtuples: Sequence[XTuple] | XRelation,
    rng: random.Random,
    *,
    require_all: bool = False,
) -> PossibleWorld:
    """Draw one world at random according to the world distribution.

    With ``require_all=True`` each x-tuple's alternatives are first
    conditioned on presence, i.e. sampling happens in the sub-space of
    full worlds (rejection-free).
    """
    probability = 1.0
    selection: list[tuple[str, int]] = []
    for xtuple in xtuples:
        options = _choices(xtuple)
        if require_all:
            options = [(idx, p) for idx, p in options if idx is not None]
            mass = sum(p for _, p in options)
            options = [(idx, p / mass) for idx, p in options]
        pick = rng.random()
        cumulative = 0.0
        chosen_index: int | None = options[-1][0]
        chosen_prob = options[-1][1]
        for index, prob in options:
            cumulative += prob
            if pick <= cumulative:
                chosen_index, chosen_prob = index, prob
                break
        probability *= chosen_prob
        if chosen_index is not None:
            selection.append((xtuple.tuple_id, chosen_index))
    return PossibleWorld(tuple(selection), probability)


def world_overlap(
    left: PossibleWorld,
    right: PossibleWorld,
) -> float:
    """Fraction of x-tuples on which two worlds agree.

    Used by world selection (Section V-A.1) to prefer "highly probable and
    pairwise dissimilar worlds": two worlds agree on an x-tuple when both
    pick the same alternative or both drop the tuple.  The result is
    normalized by the union of tuple ids mentioned by either world.
    """
    left_map = dict(left.selection)
    right_map = dict(right.selection)
    ids = set(left_map) | set(right_map)
    if not ids:
        return 1.0
    agreements = sum(
        1 for tid in ids if left_map.get(tid) == right_map.get(tid)
    )
    return agreements / len(ids)


def value_in_world(
    xtuple: XTuple,
    world: PossibleWorld,
    attribute: str,
) -> ProbabilisticValue | None:
    """The attribute value of *xtuple* in *world* (``None`` if absent)."""
    index = world.alternative_index(xtuple.tuple_id)
    if index is None:
        return None
    return xtuple.alternatives[index].value(attribute)
