"""X-tuples: the ULDB-style dependency model of Section IV-B.

An *x-tuple* consists of one or more mutually exclusive *alternatives*
``t = {t¹, …, tⁿ}``.  Each alternative is (conceptually) one possible
appearance of the tuple; alternatives carry their own probabilities whose
sum ``p(t) = Σ p(tⁱ)`` may be below 1, in which case the x-tuple is a
*maybe* x-tuple (rendered ``?`` in the paper's figures) — the entity may
not belong to the relation at all.

The paper additionally allows *individual attribute values of an
alternative* to be uncertain (e.g. the pattern value ``mu*`` of ``t31``'s
second alternative), so alternatives here store
:class:`~repro.pdb.values.ProbabilisticValue` objects, with certain values
being the common case.

The flat model of Section IV-A embeds into this model two ways:

* :meth:`XTuple.from_flat` wraps a probabilistic tuple as a single
  alternative keeping attribute-level distributions intact;
* :meth:`XTuple.expand` multiplies out all attribute distributions into
  fully-certain alternatives — the bridge that makes Equation 5 and
  Equation 6 provably consistent (both equal the possible-world
  expectation, as the paper remarks after Equation 6).
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Mapping
from typing import Any

from repro.pdb.errors import (
    EmptyDistributionError,
    InvalidProbabilityError,
)
from repro.pdb.tuples import ProbabilisticTuple, _coerce_value
from repro.pdb.values import (
    PROBABILITY_TOLERANCE,
    ProbabilisticValue,
)


class TupleAlternative:
    """One alternative ``tⁱ`` of an x-tuple.

    Parameters
    ----------
    values:
        Mapping from attribute name to value; accepts the same coercions
        as :class:`~repro.pdb.tuples.ProbabilisticTuple` (plain values,
        ``{value: prob}`` mappings, ``None`` for ⊥,
        :class:`ProbabilisticValue`).
    probability:
        ``p(tⁱ) ∈ (0, 1]`` — the alternative's share of the x-tuple mass.
    """

    __slots__ = ("_values", "probability")

    def __init__(self, values: Mapping[str, Any], probability: float) -> None:
        probability = float(probability)
        if not 0.0 < probability <= 1.0:
            raise InvalidProbabilityError(
                f"alternative probability must lie in (0, 1], got {probability}"
            )
        self._values: dict[str, ProbabilisticValue] = {
            str(attr): _coerce_value(raw) for attr, raw in values.items()
        }
        self.probability = probability

    @property
    def attributes(self) -> tuple[str, ...]:
        """Attribute names in declaration order."""
        return tuple(self._values.keys())

    def value(self, attribute: str) -> ProbabilisticValue:
        """The (possibly uncertain) value of *attribute*."""
        return self._values[attribute]

    def __getitem__(self, attribute: str) -> ProbabilisticValue:
        return self._values[attribute]

    def values(self) -> Mapping[str, ProbabilisticValue]:
        """Read-only copy of the attribute mapping."""
        return dict(self._values)

    @property
    def is_certain(self) -> bool:
        """Whether every attribute value of the alternative is certain."""
        return all(value.is_certain for value in self._values.values())

    def with_probability(self, probability: float) -> "TupleAlternative":
        """Copy with a different probability (used by conditioning)."""
        return TupleAlternative(self._values, probability)

    def map_values(self, attribute: str, fn) -> "TupleAlternative":
        """Copy with *fn* applied to every outcome of *attribute*."""
        updated = dict(self._values)
        updated[attribute] = self._values[attribute].map(fn)
        return TupleAlternative(updated, self.probability)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TupleAlternative):
            return NotImplemented
        return (
            self._values == other._values
            and abs(self.probability - other.probability)
            <= PROBABILITY_TOLERANCE
        )

    def __hash__(self) -> int:
        return hash(
            (frozenset(self._values.items()), round(self.probability, 9))
        )

    def __repr__(self) -> str:
        body = ", ".join(
            f"{attr}={value.pretty()}" for attr, value in self._values.items()
        )
        return f"TupleAlternative({body}, p={self.probability:g})"


class XTuple:
    """An x-tuple: mutually exclusive alternatives with membership mass.

    Parameters
    ----------
    tuple_id:
        Identifier unique within the x-relation (e.g. ``"t32"``).
    alternatives:
        Non-empty iterable of :class:`TupleAlternative`.  The probability
        sum must not exceed 1; a sum strictly below 1 makes this a *maybe*
        x-tuple (``?`` in the paper's figures).
    """

    __slots__ = ("tuple_id", "_alternatives")

    def __init__(
        self, tuple_id: str, alternatives: Iterable[TupleAlternative]
    ) -> None:
        alts = list(alternatives)
        if not alts:
            raise EmptyDistributionError(
                f"x-tuple {tuple_id} needs at least one alternative"
            )
        total = sum(alt.probability for alt in alts)
        if total > 1.0 + PROBABILITY_TOLERANCE:
            raise InvalidProbabilityError(
                f"alternative probabilities of {tuple_id} sum to {total} > 1"
            )
        self.tuple_id = str(tuple_id)
        self._alternatives: tuple[TupleAlternative, ...] = tuple(alts)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        tuple_id: str,
        rows: Iterable[tuple[Mapping[str, Any], float]],
    ) -> "XTuple":
        """Build from ``(values, probability)`` pairs."""
        return cls(
            tuple_id,
            [TupleAlternative(values, prob) for values, prob in rows],
        )

    @classmethod
    def certain(
        cls, tuple_id: str, values: Mapping[str, Any]
    ) -> "XTuple":
        """A certain tuple: one alternative with probability 1."""
        return cls(tuple_id, [TupleAlternative(values, 1.0)])

    @classmethod
    def from_flat(cls, flat: ProbabilisticTuple) -> "XTuple":
        """Wrap a flat probabilistic tuple as a 1-alternative x-tuple.

        The membership probability of the flat tuple becomes the
        alternative probability, and attribute-level distributions are
        kept as-is.
        """
        return cls(
            flat.tuple_id,
            [TupleAlternative(flat.values(), flat.probability)],
        )

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    @property
    def alternatives(self) -> tuple[TupleAlternative, ...]:
        """The mutually exclusive alternatives ``t¹, …, tⁿ``."""
        return self._alternatives

    def __iter__(self):
        return iter(self._alternatives)

    def __len__(self) -> int:
        return len(self._alternatives)

    @property
    def attributes(self) -> tuple[str, ...]:
        """Attribute names of the first alternative (shared schema)."""
        return self._alternatives[0].attributes

    @property
    def probability(self) -> float:
        """``p(t) = Σᵢ p(tⁱ)`` — total membership probability."""
        return min(
            1.0, sum(alt.probability for alt in self._alternatives)
        )

    @property
    def is_maybe(self) -> bool:
        """Whether the x-tuple may be absent (``?`` in the paper)."""
        return self.probability < 1.0 - PROBABILITY_TOLERANCE

    @property
    def absence_probability(self) -> float:
        """``1 - p(t)`` — probability the entity is in no alternative."""
        return max(0.0, 1.0 - self.probability)

    # ------------------------------------------------------------------
    # Conditioning (Section IV-B, "normalization w.r.t. the x-tuple")
    # ------------------------------------------------------------------

    def conditioned_alternatives(
        self,
    ) -> tuple[tuple[TupleAlternative, float], ...]:
        """Alternatives with conditional probabilities ``p(tⁱ)/p(t)``.

        This is the paper's normalization ("conditioning [32] or scaling
        [33]") that removes tuple-membership uncertainty before duplicate
        detection: we condition on the event B that the tuple belongs to
        its relation.
        """
        total = sum(alt.probability for alt in self._alternatives)
        return tuple(
            (alt, alt.probability / total) for alt in self._alternatives
        )

    def conditioned(self) -> "XTuple":
        """A copy whose alternative probabilities are scaled to sum to 1."""
        return XTuple(
            self.tuple_id,
            [
                alt.with_probability(cond_prob)
                for alt, cond_prob in self.conditioned_alternatives()
            ],
        )

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------

    def expand(self) -> "XTuple":
        """Multiply out uncertain attribute values into certain alternatives.

        Every alternative with uncertain attribute values is replaced by
        the cross product of its per-attribute outcomes; probabilities
        multiply because attribute distributions within an alternative are
        independent.  The result represents the same distribution over
        possible appearances using only certain alternatives (pure ULDB
        form).
        """
        expanded: list[TupleAlternative] = []
        for alt in self._alternatives:
            attrs = list(alt.attributes)
            outcome_lists = [list(alt.value(a).items()) for a in attrs]
            for combo in itertools.product(*outcome_lists):
                prob = alt.probability
                assignment: dict[str, Any] = {}
                for attr, (value, value_prob) in zip(attrs, combo):
                    prob *= value_prob
                    assignment[attr] = value
                expanded.append(TupleAlternative(assignment, prob))
        return XTuple(self.tuple_id, expanded)

    def expand_patterns(self, lexicons: Mapping[str, Iterable[str]]) -> "XTuple":
        """Expand pattern values attribute-wise against per-attribute lexicons."""
        updated: list[TupleAlternative] = []
        for alt in self._alternatives:
            values = dict(alt.values())
            for attr, lexicon in lexicons.items():
                if attr in values:
                    values[attr] = values[attr].expand_patterns(lexicon)
            updated.append(TupleAlternative(values, alt.probability))
        return XTuple(self.tuple_id, updated)

    # ------------------------------------------------------------------
    # Value protocol
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, XTuple):
            return NotImplemented
        return (
            self.tuple_id == other.tuple_id
            and self._alternatives == other._alternatives
        )

    def __hash__(self) -> int:
        return hash((self.tuple_id, self._alternatives))

    def __repr__(self) -> str:
        marker = " ?" if self.is_maybe else ""
        return (
            f"XTuple({self.tuple_id}: {len(self._alternatives)} "
            f"alternatives, p={self.probability:g}{marker})"
        )

    def pretty(self) -> str:
        """Multi-row rendering close to the paper's Figure 5."""
        rows = []
        for index, alt in enumerate(self._alternatives):
            cells = " | ".join(
                alt.value(attr).pretty() for attr in alt.attributes
            )
            prefix = self.tuple_id if index == 0 else " " * len(self.tuple_id)
            rows.append(f"{prefix} | {cells} | {alt.probability:g}")
        if self.is_maybe:
            rows[-1] += " ?"
        return "\n".join(rows)
