"""Synthetic uncertain data with duplicate ground truth (Tier-B workloads)."""

from repro.datagen.corpus import (
    FIRST_NAMES,
    JOB_RELATED_PAIRS,
    JOB_SYNONYM_GROUPS,
    JOBS,
    jobs_with_prefix,
)
from repro.datagen.corruption import (
    Corruptor,
    delete_char,
    insert_char,
    ocr_confuse,
    substitute_char,
    transpose_chars,
    truncate,
)
from repro.datagen.generator import (
    PERSON_SCHEMA,
    Dataset,
    DatasetConfig,
    DatasetGenerator,
    Entity,
    generate_dataset,
)
from repro.datagen.uncertainty import (
    HEAVY_UNCERTAINTY,
    LIGHT_UNCERTAINTY,
    UncertaintyProfile,
    make_uncertain_value,
    membership_probability,
)

__all__ = [
    "FIRST_NAMES",
    "HEAVY_UNCERTAINTY",
    "JOBS",
    "JOB_RELATED_PAIRS",
    "JOB_SYNONYM_GROUPS",
    "LIGHT_UNCERTAINTY",
    "PERSON_SCHEMA",
    "Corruptor",
    "Dataset",
    "DatasetConfig",
    "DatasetGenerator",
    "Entity",
    "UncertaintyProfile",
    "delete_char",
    "generate_dataset",
    "insert_char",
    "jobs_with_prefix",
    "make_uncertain_value",
    "membership_probability",
    "ocr_confuse",
    "substitute_char",
    "transpose_chars",
    "truncate",
]
