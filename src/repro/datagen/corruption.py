"""Error injection: the dissimilarity sources of Section III.

"Due to deficiencies in data collection, data modeling or data
management, real-life data is often incorrect and/or incomplete …
duplicate detection techniques have to be designed for properly handling
dissimilarities due to missing data, typos, data obsolescence or
misspellings."

Every corruption operator takes a string and a :class:`random.Random` and
returns a corrupted variant.  :class:`Corruptor` composes them with
configurable rates; it is deliberately deterministic given the RNG so
experiments are reproducible.
"""

from __future__ import annotations

import random
import string
from collections.abc import Callable, Sequence

#: Keyboard-neighborhood map for realistic substitution typos (QWERTY).
_NEIGHBORS: dict[str, str] = {
    "a": "qwsz", "b": "vghn", "c": "xdfv", "d": "serfcx", "e": "wsdr",
    "f": "drtgvc", "g": "ftyhbv", "h": "gyujnb", "i": "ujko", "j": "huikmn",
    "k": "jiolm", "l": "kop", "m": "njk", "n": "bhjm", "o": "iklp",
    "p": "ol", "q": "wa", "r": "edft", "s": "awedxz", "t": "rfgy",
    "u": "yhji", "v": "cfgb", "w": "qase", "x": "zsdc", "y": "tghu",
    "z": "asx",
}

#: Classic OCR confusion pairs.
_OCR_CONFUSIONS: tuple[tuple[str, str], ...] = (
    ("0", "O"), ("1", "l"), ("1", "I"), ("5", "S"), ("8", "B"),
    ("m", "rn"), ("cl", "d"), ("vv", "w"), ("e", "c"), ("u", "v"),
)


def _random_position(text: str, rng: random.Random) -> int:
    return rng.randrange(len(text))


def substitute_char(text: str, rng: random.Random) -> str:
    """Replace one character with a keyboard neighbor (or random letter)."""
    if not text:
        return text
    index = _random_position(text, rng)
    original = text[index]
    pool = _NEIGHBORS.get(original.lower())
    if pool:
        replacement = rng.choice(pool)
        if original.isupper():
            replacement = replacement.upper()
    else:
        replacement = rng.choice(string.ascii_lowercase)
    return text[:index] + replacement + text[index + 1 :]


def delete_char(text: str, rng: random.Random) -> str:
    """Drop one character."""
    if len(text) <= 1:
        return text
    index = _random_position(text, rng)
    return text[:index] + text[index + 1 :]


def insert_char(text: str, rng: random.Random) -> str:
    """Insert a random lowercase letter."""
    index = rng.randrange(len(text) + 1)
    return text[:index] + rng.choice(string.ascii_lowercase) + text[index:]


def transpose_chars(text: str, rng: random.Random) -> str:
    """Swap two adjacent characters (the dominant real-world typo)."""
    if len(text) < 2:
        return text
    index = rng.randrange(len(text) - 1)
    return (
        text[:index]
        + text[index + 1]
        + text[index]
        + text[index + 2 :]
    )


def ocr_confuse(text: str, rng: random.Random) -> str:
    """Apply one OCR confusion if any pattern occurs; else substitute."""
    applicable = [
        (src, dst)
        for src, dst in _OCR_CONFUSIONS
        if src in text
    ]
    if not applicable:
        return substitute_char(text, rng)
    src, dst = rng.choice(applicable)
    index = text.index(src)
    return text[:index] + dst + text[index + len(src) :]


def truncate(text: str, rng: random.Random) -> str:
    """Cut the value short (field-length limits, lazy entry)."""
    if len(text) <= 2:
        return text
    keep = rng.randrange(2, len(text))
    return text[:keep]


#: A corruption operator.
CorruptionOp = Callable[[str, random.Random], str]

#: The default typo mix with realistic relative frequencies.
DEFAULT_OPERATORS: tuple[tuple[CorruptionOp, float], ...] = (
    (substitute_char, 0.30),
    (transpose_chars, 0.25),
    (delete_char, 0.20),
    (insert_char, 0.15),
    (ocr_confuse, 0.07),
    (truncate, 0.03),
)


class Corruptor:
    """Composable, reproducible string corruption.

    Parameters
    ----------
    operators:
        ``(operator, weight)`` pairs; weights need not sum to 1.
    max_errors:
        Upper bound on how many operators one corruption applies (the
        actual count is drawn uniformly from 1..max_errors).
    """

    def __init__(
        self,
        operators: Sequence[tuple[CorruptionOp, float]] = DEFAULT_OPERATORS,
        *,
        max_errors: int = 2,
    ) -> None:
        if not operators:
            raise ValueError("need at least one corruption operator")
        if max_errors < 1:
            raise ValueError(f"max_errors must be >= 1, got {max_errors}")
        total = sum(weight for _, weight in operators)
        if total <= 0.0:
            raise ValueError("operator weights must sum to a positive value")
        self._operators = [(op, weight / total) for op, weight in operators]
        self._max_errors = max_errors

    def _pick_operator(self, rng: random.Random) -> CorruptionOp:
        threshold = rng.random()
        cumulative = 0.0
        for op, weight in self._operators:
            cumulative += weight
            if threshold <= cumulative:
                return op
        return self._operators[-1][0]

    def corrupt(self, text: str, rng: random.Random) -> str:
        """One corrupted variant of *text* (never the identical string,
        unless the value is too short for any operator to change it)."""
        error_count = rng.randint(1, self._max_errors)
        corrupted = text
        for _ in range(error_count):
            corrupted = self._pick_operator(rng)(corrupted, rng)
        if corrupted == text and len(text) >= 2:
            corrupted = transpose_chars(text, rng)
        return corrupted

    def variants(
        self, text: str, count: int, rng: random.Random
    ) -> list[str]:
        """*count* distinct corrupted variants (best effort for short
        strings, where the variant space may be exhausted)."""
        produced: list[str] = []
        attempts = 0
        while len(produced) < count and attempts < count * 20:
            attempts += 1
            candidate = self.corrupt(text, rng)
            if candidate != text and candidate not in produced:
                produced.append(candidate)
        return produced
