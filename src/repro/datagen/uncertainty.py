"""Uncertainty injection: turning clean values into probabilistic ones.

The generator models how probabilistic data arises in practice (the
paper's motivation: extraction pipelines and sensors that cannot decide
between readings):

* an **uncertain attribute value** holds the true value with dominant
  probability and corrupted variants as the remaining alternatives —
  or, with some probability, the true value is *not* among the
  alternatives at all (a hard error);
* **non-existence**: with some probability an attribute has ⊥ mass
  (missing data, Section III);
* **maybe tuples**: x-tuples whose alternatives sum below 1
  (tuple-membership uncertainty, which detection must ignore);
* **pattern values**: occasionally a value is only known up to a prefix
  family (the paper's ``mu*``), emitted as a
  :class:`~repro.pdb.values.PatternValue` over the job lexicon.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datagen.corruption import Corruptor
from repro.pdb.values import NULL, PatternValue, ProbabilisticValue


@dataclass(frozen=True)
class UncertaintyProfile:
    """Knobs controlling how much uncertainty the generator injects.

    Attributes
    ----------
    uncertain_value_rate:
        Probability that an attribute value becomes a distribution
        instead of staying certain.
    max_alternatives:
        Maximum number of outcomes per uncertain value (≥ 2).
    true_value_mass:
        Expected probability mass of the true value inside an uncertain
        value (the rest is spread over corrupted variants).
    true_value_dropout:
        Probability that the true value is missing from the support
        entirely (hard extraction error).
    null_rate:
        Probability that a value carries ⊥ mass (and how much, jittered).
    pattern_rate:
        Probability that an uncertain *job* value is emitted as a prefix
        pattern instead of explicit alternatives.
    maybe_rate:
        Probability that a tuple becomes a maybe tuple.
    min_membership:
        Lower bound for the membership probability of maybe tuples.
    """

    uncertain_value_rate: float = 0.5
    max_alternatives: int = 3
    true_value_mass: float = 0.7
    true_value_dropout: float = 0.05
    null_rate: float = 0.08
    pattern_rate: float = 0.05
    maybe_rate: float = 0.2
    min_membership: float = 0.4

    def __post_init__(self) -> None:
        for field_name in (
            "uncertain_value_rate",
            "true_value_mass",
            "true_value_dropout",
            "null_rate",
            "pattern_rate",
            "maybe_rate",
            "min_membership",
        ):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"{field_name} must lie in [0, 1], got {value}"
                )
        if self.max_alternatives < 2:
            raise ValueError(
                f"max_alternatives must be >= 2, got {self.max_alternatives}"
            )
        if not 0.0 < self.true_value_mass < 1.0:
            raise ValueError(
                "true_value_mass must lie strictly inside (0, 1), got "
                f"{self.true_value_mass}"
            )


#: A conservative profile: mostly certain data, light uncertainty.
LIGHT_UNCERTAINTY = UncertaintyProfile(
    uncertain_value_rate=0.25,
    max_alternatives=2,
    true_value_mass=0.85,
    true_value_dropout=0.02,
    null_rate=0.04,
    pattern_rate=0.02,
    maybe_rate=0.1,
)

#: A heavy profile: most values uncertain, frequent maybes and nulls.
HEAVY_UNCERTAINTY = UncertaintyProfile(
    uncertain_value_rate=0.8,
    max_alternatives=4,
    true_value_mass=0.55,
    true_value_dropout=0.1,
    null_rate=0.15,
    pattern_rate=0.08,
    maybe_rate=0.35,
)


def _spread(total: float, count: int, rng: random.Random) -> list[float]:
    """Split *total* mass over *count* positive shares, randomly jittered."""
    raw = [rng.uniform(0.5, 1.5) for _ in range(count)]
    scale = total / sum(raw)
    return [share * scale for share in raw]


def make_uncertain_value(
    true_value: str,
    corruptor: Corruptor,
    profile: UncertaintyProfile,
    rng: random.Random,
    *,
    pattern_lexicon: tuple[str, ...] = (),
) -> ProbabilisticValue:
    """One probabilistic attribute value around *true_value*.

    Follows the profile: with ``uncertain_value_rate`` the value becomes
    a distribution over the true value and corrupted variants; ⊥ mass and
    pattern emission are applied per the profile's rates.
    """
    # Pattern emission: represent the value only by its 2-char prefix
    # family, provided the lexicon supports it (the paper's mu* case).
    if (
        pattern_lexicon
        and len(true_value) >= 2
        and rng.random() < profile.pattern_rate
    ):
        prefix = true_value[:2]
        family = [w for w in pattern_lexicon if w.startswith(prefix)]
        if len(family) >= 2:
            return ProbabilisticValue.certain(PatternValue(prefix + "*"))

    if rng.random() >= profile.uncertain_value_rate:
        # Certain value — possibly with ⊥ instead (pure missing data).
        if rng.random() < profile.null_rate:
            return ProbabilisticValue.missing()
        return ProbabilisticValue.certain(true_value)

    alternative_count = rng.randint(2, profile.max_alternatives)
    variant_count = alternative_count - 1
    variants = corruptor.variants(true_value, variant_count, rng)
    if not variants:
        return ProbabilisticValue.certain(true_value)

    null_mass = (
        rng.uniform(0.05, 0.2) if rng.random() < profile.null_rate else 0.0
    )
    remaining = 1.0 - null_mass

    outcomes: dict[object, float] = {}
    if rng.random() < profile.true_value_dropout:
        # Hard error: the truth is not among the alternatives.
        shares = _spread(remaining, len(variants), rng)
        for variant, share in zip(variants, shares):
            outcomes[variant] = share
    else:
        true_mass = remaining * min(
            0.95, max(0.05, rng.gauss(profile.true_value_mass, 0.08))
        )
        outcomes[true_value] = true_mass
        shares = _spread(remaining - true_mass, len(variants), rng)
        for variant, share in zip(variants, shares):
            outcomes[variant] = outcomes.get(variant, 0.0) + share
    if null_mass > 0.0:
        outcomes[NULL] = null_mass
    return ProbabilisticValue(outcomes)


def membership_probability(
    profile: UncertaintyProfile, rng: random.Random
) -> float:
    """Draw a tuple membership probability p(t) per the maybe rate."""
    if rng.random() < profile.maybe_rate:
        return rng.uniform(profile.min_membership, 0.95)
    return 1.0
