"""Synthetic probabilistic datasets with exact duplicate ground truth.

The Tier-B experiments need what the paper never had: probabilistic
relations whose true duplicate pairs are known.  The generator

1. draws ground-truth entities (name, job) from the corpora,
2. materializes 1..k *records* per entity (records of the same entity are
   true duplicates); non-first records are *perturbed* — their clean
   values carry realistic errors (typos, obsolescence, missing data),
3. wraps every record's values into probabilistic values / x-tuple
   alternatives according to an :class:`UncertaintyProfile`,
4. optionally splits the records into two source relations (the paper's
   integration scenario ℛ1/ℛ2),

and returns the relations together with the gold pair set.

Everything is driven by one :class:`random.Random` seed — identical
configurations produce identical datasets.
"""

from __future__ import annotations

import random
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.datagen.corpus import FIRST_NAMES, JOBS
from repro.datagen.corruption import Corruptor
from repro.datagen.uncertainty import (
    UncertaintyProfile,
    make_uncertain_value,
    membership_probability,
)
from repro.pdb.relations import Schema, XRelation
from repro.pdb.tuples import ProbabilisticTuple
from repro.pdb.values import NULL, ProbabilisticValue
from repro.pdb.xtuples import TupleAlternative, XTuple

#: The running schema of the paper's examples.
PERSON_SCHEMA = Schema(("name", "job"))


@dataclass(frozen=True)
class Entity:
    """One ground-truth real-world person."""

    entity_id: int
    name: str
    job: str


@dataclass(frozen=True)
class DatasetConfig:
    """Generator configuration.

    Attributes
    ----------
    entity_count:
        Number of distinct real-world entities.
    duplicate_rate:
        Fraction of entities that get more than one record.
    max_records_per_entity:
        Upper bound on records per duplicated entity (≥ 2).
    record_error_rate:
        Probability that a duplicate record's clean value differs from
        the entity's true value (typos/obsolescence *between* records —
        this is what makes detection non-trivial).
    missing_rate:
        Probability that a duplicate record loses its job value entirely
        (data incompleteness between records).
    profile:
        Uncertainty injection profile (within-record uncertainty).
    alternatives_per_xtuple:
        Maximum alternatives of generated x-tuples (≥ 1).
    seed:
        RNG seed; every run with equal config is identical.
    """

    entity_count: int = 100
    duplicate_rate: float = 0.4
    max_records_per_entity: int = 3
    record_error_rate: float = 0.5
    missing_rate: float = 0.05
    profile: UncertaintyProfile = field(default_factory=UncertaintyProfile)
    alternatives_per_xtuple: int = 3
    seed: int = 7

    def __post_init__(self) -> None:
        if self.entity_count < 1:
            raise ValueError("entity_count must be >= 1")
        if not 0.0 <= self.duplicate_rate <= 1.0:
            raise ValueError("duplicate_rate must lie in [0, 1]")
        if self.max_records_per_entity < 2:
            raise ValueError("max_records_per_entity must be >= 2")
        if not 0.0 <= self.record_error_rate <= 1.0:
            raise ValueError("record_error_rate must lie in [0, 1]")
        if not 0.0 <= self.missing_rate <= 1.0:
            raise ValueError("missing_rate must lie in [0, 1]")
        if self.alternatives_per_xtuple < 1:
            raise ValueError("alternatives_per_xtuple must be >= 1")


@dataclass(frozen=True)
class Dataset:
    """A generated dataset plus its ground truth.

    Attributes
    ----------
    relation:
        The full x-relation (union of both sources when split).
    sources:
        The per-source relations (length 1 or 2).
    true_matches:
        Gold standard: unordered tuple-id pairs referring to the same
        entity.
    entity_of:
        ``tuple id → entity id`` (for cluster-level evaluation).
    """

    relation: XRelation
    sources: tuple[XRelation, ...]
    true_matches: frozenset[tuple[str, str]]
    entity_of: dict[str, int]

    @property
    def duplicate_cluster_count(self) -> int:
        """Number of entities represented by ≥ 2 records."""
        counts: dict[int, int] = {}
        for entity_id in self.entity_of.values():
            counts[entity_id] = counts.get(entity_id, 0) + 1
        return sum(1 for count in counts.values() if count >= 2)


class DatasetGenerator:
    """Builds reproducible probabilistic datasets from a config."""

    def __init__(self, config: DatasetConfig) -> None:
        self._config = config
        self._corruptor = Corruptor()

    # ------------------------------------------------------------------
    # Ground truth
    # ------------------------------------------------------------------

    def _entities(self, rng: random.Random) -> list[Entity]:
        return [
            Entity(
                entity_id=index,
                name=rng.choice(FIRST_NAMES),
                job=rng.choice(JOBS),
            )
            for index in range(self._config.entity_count)
        ]

    def _records_of(
        self, entity: Entity, rng: random.Random
    ) -> Iterator[tuple[str, str | None]]:
        """Clean ``(name, job)`` records of one entity.

        The first record is faithful; further records carry record-level
        errors (the *between-record* dissimilarities of Section III).
        A job of ``None`` means the record lost the value entirely.
        """
        yield entity.name, entity.job
        if rng.random() >= self._config.duplicate_rate:
            return
        extra = rng.randint(1, self._config.max_records_per_entity - 1)
        for _ in range(extra):
            name, job = entity.name, entity.job
            if rng.random() < self._config.record_error_rate:
                name = self._corruptor.corrupt(name, rng)
            if rng.random() < self._config.missing_rate:
                yield name, None
                continue
            if rng.random() < self._config.record_error_rate * 0.6:
                # Data obsolescence: the person changed jobs, or the job
                # was recorded with errors.
                if rng.random() < 0.4:
                    job = rng.choice(JOBS)
                else:
                    job = self._corruptor.corrupt(job, rng)
            yield name, job

    # ------------------------------------------------------------------
    # Probabilistic wrapping
    # ------------------------------------------------------------------

    def _flat_tuple(
        self,
        tuple_id: str,
        name: str,
        job: str | None,
        rng: random.Random,
    ) -> ProbabilisticTuple:
        profile = self._config.profile
        name_value = make_uncertain_value(
            name, self._corruptor, profile, rng
        )
        job_value = (
            ProbabilisticValue.missing()
            if job is None
            else make_uncertain_value(
                job, self._corruptor, profile, rng, pattern_lexicon=JOBS
            )
        )
        return ProbabilisticTuple(
            tuple_id,
            {"name": name_value, "job": job_value},
            membership_probability(profile, rng),
        )

    def _xtuple(
        self,
        tuple_id: str,
        name: str,
        job: str | None,
        rng: random.Random,
    ) -> XTuple:
        profile = self._config.profile
        membership = membership_probability(profile, rng)
        alternative_count = rng.randint(
            1, self._config.alternatives_per_xtuple
        )
        if alternative_count == 1:
            # Single alternative, possibly with value-level uncertainty.
            flat = self._flat_tuple(tuple_id, name, job, rng)
            return XTuple(
                tuple_id,
                [TupleAlternative(flat.values(), membership)],
            )
        # Multiple certain alternatives: the true record plus corrupted
        # appearances, mutually exclusive (the ULDB reading).
        masses = [rng.uniform(0.5, 1.5) for _ in range(alternative_count)]
        scale = membership / sum(masses)
        masses = [mass * scale for mass in masses]
        masses.sort(reverse=True)
        alternatives: list[TupleAlternative] = []
        seen: set[tuple[str, object]] = set()
        for index, mass in enumerate(masses):
            alt_name, alt_job = name, job
            if index > 0:
                if rng.random() < 0.7:
                    alt_name = self._corruptor.corrupt(name, rng)
                if alt_job is not None and rng.random() < 0.5:
                    alt_job = self._corruptor.corrupt(alt_job, rng)
            signature = (alt_name, alt_job)
            if signature in seen:
                continue
            seen.add(signature)
            alternatives.append(
                TupleAlternative(
                    {
                        "name": alt_name,
                        "job": NULL if alt_job is None else alt_job,
                    },
                    mass,
                )
            )
        return XTuple(tuple_id, alternatives)

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------

    def generate(
        self, *, split_sources: bool = False, flat: bool = False
    ) -> Dataset:
        """Build the dataset.

        Parameters
        ----------
        split_sources:
            Distribute records over two source relations R1/R2 (records
            of one entity may land in either — inter- and intra-source
            duplicates both occur, as in the paper's scenario).
        flat:
            Generate 1-alternative x-tuples whose uncertainty lives
            entirely on the attribute level (the Section IV-A model)
            instead of multi-alternative x-tuples.
        """
        rng = random.Random(self._config.seed)
        entity_of: dict[str, int] = {}
        xtuples: list[XTuple] = []
        counter = 0
        for entity in self._entities(rng):
            for name, job in self._records_of(entity, rng):
                tuple_id = f"t{counter:05d}"
                counter += 1
                if flat:
                    xtuple = XTuple.from_flat(
                        self._flat_tuple(tuple_id, name, job, rng)
                    )
                else:
                    xtuple = self._xtuple(tuple_id, name, job, rng)
                xtuples.append(xtuple)
                entity_of[tuple_id] = entity.entity_id

        true_matches: set[tuple[str, str]] = set()
        by_entity: dict[int, list[str]] = {}
        for tuple_id, entity_id in entity_of.items():
            by_entity.setdefault(entity_id, []).append(tuple_id)
        for members in by_entity.values():
            for i, left in enumerate(members):
                for right in members[i + 1 :]:
                    true_matches.add(
                        (left, right) if left <= right else (right, left)
                    )

        if split_sources:
            first: list[XTuple] = []
            second: list[XTuple] = []
            for xtuple in xtuples:
                (first if rng.random() < 0.5 else second).append(xtuple)
            sources = (
                XRelation("R1", PERSON_SCHEMA, first),
                XRelation("R2", PERSON_SCHEMA, second),
            )
            relation = sources[0].union(sources[1], "R1∪R2")
        else:
            relation = XRelation("R", PERSON_SCHEMA, xtuples)
            sources = (relation,)

        return Dataset(
            relation=relation,
            sources=sources,
            true_matches=frozenset(true_matches),
            entity_of=entity_of,
        )


def generate_dataset(
    config: DatasetConfig | None = None, **overrides
) -> Dataset:
    """Convenience one-call generation.

    ``generate_dataset(entity_count=50, seed=3)`` builds a default config
    with the given overrides and generates the dataset.  The keyword
    arguments ``split_sources`` and ``flat`` are forwarded to
    :meth:`DatasetGenerator.generate`.
    """
    generate_kwargs = {
        key: overrides.pop(key)
        for key in ("split_sources", "flat")
        if key in overrides
    }
    if config is None:
        config = DatasetConfig(**overrides)
    elif overrides:
        raise TypeError(
            "pass either a config object or field overrides, not both"
        )
    return DatasetGenerator(config).generate(**generate_kwargs)
