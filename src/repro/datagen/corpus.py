"""Offline corpora for synthetic uncertain person data.

The paper's running schema is ``(name, job)``; the generator draws true
entity values from these lists.  The job lexicon deliberately contains
several ``mu``-prefixed occupations so the paper's pattern-value example
(``mu*`` as a uniform distribution over jobs starting with "mu") is
exercised by generated data, plus near-duplicate occupation pairs
(machinist/mechanic, confectioner/confectionist) mirroring the paper's
Figure 4.
"""

from __future__ import annotations

#: First names — includes the paper's cast (Tim, Tom, Jim, Kim, John,
#: Johan, Jon, Timothy, Sean) plus common census-style names.
FIRST_NAMES: tuple[str, ...] = (
    "Tim", "Tom", "Jim", "Kim", "John", "Johan", "Jon", "Timothy", "Sean",
    "Anna", "Anne", "Anja", "Ben", "Bernd", "Bert", "Carl", "Karl",
    "Clara", "Klara", "Daniel", "David", "Emma", "Emil", "Erik", "Eric",
    "Frank", "Franz", "Greta", "Hanna", "Hannah", "Henry", "Henri",
    "Ida", "Ingrid", "Jacob", "Jakob", "Jan", "Jana", "Johanna", "Jonas",
    "Julia", "Jule", "Lara", "Laura", "Lena", "Leon", "Lisa", "Liesa",
    "Lukas", "Lucas", "Marie", "Maria", "Mark", "Marc", "Martin", "Max",
    "Mia", "Michael", "Mikael", "Nina", "Noah", "Ole", "Olga", "Otto",
    "Paul", "Paula", "Peter", "Petra", "Philip", "Phillip", "Rita",
    "Robert", "Rupert", "Sara", "Sarah", "Simon", "Sophie", "Sofie",
    "Stefan", "Stephan", "Theo", "Thea", "Ulrich", "Uwe", "Vera",
    "Victor", "Viktor", "Walter", "Werner", "Yara", "Yusuf", "Zoe",
)

#: Occupations — includes the paper's jobs (machinist, mechanic, baker,
#: confectioner, confectionist, pilot, pianist, engineer, musician) and a
#: family of ``mu``-prefixed jobs for the pattern-value example.
JOBS: tuple[str, ...] = (
    "machinist", "mechanic", "mechanist", "baker", "confectioner",
    "confectionist", "pilot", "pianist", "engineer",
    "musician", "museum guide", "musicologist", "muralist",
    "accountant", "actor", "architect", "astronomer", "athlete",
    "attorney", "barber", "bartender", "biologist", "bookkeeper",
    "brewer", "bricklayer", "butcher", "carpenter", "cashier", "chef",
    "chemist", "clerk", "coach", "composer", "cook", "courier",
    "dancer", "dentist", "designer", "detective", "doctor", "driver",
    "economist", "editor", "electrician", "farmer", "firefighter",
    "fisherman", "florist", "gardener", "geologist", "glazier",
    "goldsmith", "guard", "hairdresser", "historian", "janitor",
    "jeweler", "journalist", "judge", "laborer", "lawyer", "librarian",
    "locksmith", "manager", "mason", "mathematician", "merchant",
    "midwife", "miller", "miner", "nurse", "optician", "painter",
    "pharmacist", "photographer", "physicist", "plumber", "porter",
    "printer", "professor", "programmer", "publisher", "roofer",
    "sailor", "salesman", "scientist", "sculptor", "secretary",
    "shepherd", "shoemaker", "singer", "smith", "surgeon", "surveyor",
    "tailor", "teacher", "translator", "veterinarian", "waiter",
    "watchmaker", "weaver", "welder", "writer", "zoologist",
)

#: Glossary seed: occupation synonym groups for semantic matching tests.
JOB_SYNONYM_GROUPS: tuple[tuple[str, ...], ...] = (
    ("confectioner", "confectionist"),
    ("machinist", "mechanist"),
    ("doctor", "physician"),
    ("lawyer", "attorney"),
    ("cook", "chef"),
)

#: Glossary seed: related (but not synonymous) occupations with scores.
JOB_RELATED_PAIRS: dict[tuple[str, str], float] = {
    ("machinist", "mechanic"): 0.8,
    ("baker", "confectioner"): 0.6,
    ("pianist", "musician"): 0.7,
    ("composer", "musician"): 0.6,
    ("nurse", "doctor"): 0.4,
}


def jobs_with_prefix(prefix: str) -> tuple[str, ...]:
    """All corpus jobs starting with *prefix* (the ``mu*`` family)."""
    return tuple(job for job in JOBS if job.startswith(prefix))
