"""Command-line front end for incremental detection sessions.

Three subcommands over a base relation (a ``.json`` file or an
on-disk store directory) and an optional session journal directory::

    python -m repro.service detect --base corpus.json --journal sess/
    python -m repro.service ingest --base corpus.json --journal sess/ batch.json
    python -m repro.service serve  --base corpus.json --journal sess/

``detect`` runs (or resumes) the session and prints one result
document.  ``ingest`` applies one batch file —
``{"upserts": [<encoded x-tuples>], "deletes": [<ids>]}`` — refreshes,
and prints the delta summary.  ``serve`` is the long-running form: it
reads one JSON document per stdin line (the same ``upserts`` /
``deletes`` batch shape, or ``{"cmd": "detect" | "stats" | "quit"}``)
and answers each with one JSON line on stdout; progress streams to
stderr when ``--progress`` is set.

The pipeline configuration mirrors the reproduction experiments:
the Jaro–Winkler matcher and weighted-sum model of
:mod:`repro.experiments.quality`, with the reducer chosen by
``--block`` / ``--sort``/``--window`` / full comparison.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from repro.experiments.quality import default_matcher, weighted_model
from repro.matching import DuplicateDetector
from repro.matching.decision import CalibrationSet, calibrate
from repro.matching.executor import DetectionResult
from repro.pdb import io as pdb_io
from repro.pdb.io import decode_xtuple
from repro.reduction import (
    CertainKeyBlocking,
    SortedNeighborhood,
    SubstringKey,
)


def parse_key(spec: str) -> SubstringKey:
    """Parse ``name:1,job:1`` into a :class:`SubstringKey`."""
    parts = []
    for field in spec.split(","):
        field = field.strip()
        if not field:
            continue
        attribute, _, length = field.partition(":")
        if not attribute or not length:
            raise ValueError(
                f"bad key component {field!r}; expected attribute:length"
            )
        parts.append((attribute, int(length)))
    if not parts:
        raise ValueError(f"empty key specification {spec!r}")
    return SubstringKey(parts)


def build_detector(args: argparse.Namespace) -> DuplicateDetector:
    """The detector the CLI session runs with.

    With ``--calibration FILE`` the weighted model's match threshold is
    re-calibrated from the labeled pair file
    (:meth:`~repro.matching.decision.CalibrationSet.load`) at the
    requested ``--target-fpr`` and wrapped in a
    :class:`~repro.matching.decision.CalibratedModel` — safety gates
    included, so an untrustworthy calibration file forces every
    decision to UNSURE rather than silently deciding.
    """
    reducer = None
    if args.block:
        reducer = CertainKeyBlocking(parse_key(args.block))
    elif args.sort:
        reducer = SortedNeighborhood(parse_key(args.sort), window=args.window)
    model = weighted_model(args.t_mu, args.t_lambda)
    if args.calibration:
        model = calibrate(
            model,
            CalibrationSet.load(args.calibration),
            method=args.calibration_method,
            target_fpr=args.target_fpr,
        )
    return DuplicateDetector(
        default_matcher(),
        model,
        reducer=reducer,
    )


def open_base(path: str, **store_options):
    """Open the base relation: file → in-memory, directory → spilled."""
    return pdb_io.open_store(path, **store_options)


def build_session(args: argparse.Namespace):
    """Open the configured session (replaying any journal)."""
    detector = build_detector(args)
    on_progress = None
    if args.progress:

        def on_progress(progress) -> None:
            print(
                f"[{progress.index + 1}/{progress.partitions}] "
                f"{progress.label}: {progress.decided_pairs}"
                f"/{progress.total_pairs} pairs",
                file=sys.stderr,
                flush=True,
            )

    return detector.session(
        open_base(args.base),
        journal=args.journal,
        n_jobs=args.n_jobs,
        scheduling=args.scheduling,
        keep_derivations=not args.no_derivations,
        min_similarity=args.min_similarity,
        kernel_backend=args.kernel_backend,
        on_progress=on_progress,
        audit=args.audit,
    )


def result_document(session, result: DetectionResult) -> dict[str, Any]:
    """The JSON answer for one refresh."""
    stats = session.stats
    report = session.last_report
    document = {
        "tuples": result.relation_size,
        "decided_pairs": len(result.decisions),
        "matches": [list(pair) for pair in result.matches],
        "possible_matches": [list(pair) for pair in result.possible_matches],
        "tombstones": [list(pair) for pair in session.tombstones],
        "stats": {
            "ingests": stats.ingests,
            "refreshes": stats.refreshes,
            "partitions_planned": stats.partitions_planned,
            "partitions_reused": stats.partitions_reused,
            "partitions_executed": stats.partitions_executed,
            "pairs_planned": stats.pairs_planned,
            "pairs_executed": stats.pairs_executed,
            "tombstoned_pairs": stats.tombstoned_pairs,
            "gate_trips": stats.gate_trips,
            "cache_hit_rates": session.cache_hit_rates(),
        },
        "report": report.summary() if report is not None else None,
    }
    trips = session.gate_trips
    if trips:
        document["gate_trips"] = [str(trip) for trip in trips]
    if session.manifests:
        document["manifest"] = session.manifests[-1].fingerprint()
    return document


def stats_document(session) -> dict[str, Any]:
    """The JSON answer for a stats query."""
    return {
        "summary": session.stats.summary(),
        "overlay_size": session.store.overlay_size,
        "tuples": len(session.store),
        "cache_hit_rates": session.cache_hit_rates(),
    }


def decode_batch(document: dict) -> tuple[list, list]:
    """Split one batch document into decoded upserts and delete ids."""
    upserts = [
        decode_xtuple(encoded) for encoded in document.get("upserts", ())
    ]
    deletes = list(document.get("deletes", ()))
    return upserts, deletes


def emit(document: dict, stream=None) -> None:
    print(
        json.dumps(document, separators=(",", ":"), sort_keys=True),
        file=stream if stream is not None else sys.stdout,
        flush=True,
    )


def cmd_detect(args: argparse.Namespace) -> int:
    session = build_session(args)
    result = session.detect()
    if session.journal is not None:
        session.save()
    emit(result_document(session, result))
    return 0


def cmd_ingest(args: argparse.Namespace) -> int:
    session = build_session(args)
    session.detect()  # establish the baseline before applying the delta
    with open(args.batch, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    upserts, deletes = decode_batch(document)
    result = session.ingest(upserts, deletes=deletes)
    emit(result_document(session, result))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    session = build_session(args)
    for line in sys.stdin:
        line = line.strip()
        if not line:
            continue
        try:
            document = json.loads(line)
        except json.JSONDecodeError as error:
            emit({"ok": False, "error": f"bad JSON: {error}"})
            continue
        command = document.get("cmd")
        try:
            if command == "quit":
                break
            if command == "stats":
                emit({"ok": True, **stats_document(session)})
            elif command == "detect":
                result = session.detect()
                emit({"ok": True, **result_document(session, result)})
            elif command is None:
                upserts, deletes = decode_batch(document)
                result = session.ingest(upserts, deletes=deletes)
                emit({"ok": True, **result_document(session, result)})
            else:
                emit({"ok": False, "error": f"unknown command {command!r}"})
        except Exception as error:  # operator loop: report, keep serving
            emit({"ok": False, "error": str(error)})
    if session.journal is not None:
        session.save()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Incremental duplicate-detection sessions.",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    for name, handler, extra in (
        ("detect", cmd_detect, False),
        ("ingest", cmd_ingest, True),
        ("serve", cmd_serve, False),
    ):
        sub = commands.add_parser(name)
        sub.set_defaults(handler=handler)
        sub.add_argument("--base", required=True, help="base relation (.json file or store directory)")
        sub.add_argument("--journal", default=None, help="session journal directory (persistent sessions)")
        sub.add_argument("--block", default=None, metavar="KEY", help="blocking key, e.g. name:1,job:1")
        sub.add_argument("--sort", default=None, metavar="KEY", help="SNM sorting key, e.g. name:3,job:2")
        sub.add_argument("--window", type=int, default=5, help="SNM window size (with --sort)")
        sub.add_argument("--t-mu", type=float, default=0.9, help="match threshold")
        sub.add_argument("--t-lambda", type=float, default=0.78, help="possible-match threshold")
        sub.add_argument("--calibration", default=None, metavar="FILE", help="labeled calibration-pair file; re-calibrates the match threshold")
        sub.add_argument("--calibration-method", default="conformal", choices=("conformal", "np"), help="threshold calibration method (with --calibration)")
        sub.add_argument("--target-fpr", type=float, default=0.05, help="false-positive-rate target for calibration")
        sub.add_argument("--audit", default=None, metavar="DIR", help="write one audit manifest per refresh into this directory")
        sub.add_argument("--min-similarity", default=None, help="similarity floors: 'auto' or a float")
        sub.add_argument("--kernel-backend", default=None, help="comparison kernel backend")
        sub.add_argument("--n-jobs", type=int, default=1, help="worker processes")
        sub.add_argument("--scheduling", default="partitioned", choices=("partitioned", "stealing"))
        sub.add_argument("--no-derivations", action="store_true", help="drop derivation matrices (enables decision persistence)")
        sub.add_argument("--progress", action="store_true", help="stream per-partition progress to stderr")
        if extra:
            sub.add_argument("batch", help="batch file: {\"upserts\": [...], \"deletes\": [...]}")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.min_similarity is not None and args.min_similarity != "auto":
        args.min_similarity = float(args.min_similarity)
    if args.block and args.sort:
        raise SystemExit("--block and --sort are mutually exclusive")
    return args.handler(args)


__all__ = [
    "build_detector",
    "build_parser",
    "build_session",
    "main",
    "parse_key",
]
