"""Incremental detection sessions: delta-only re-detection.

A :class:`DetectionSession` keeps the products of a detect run alive
between calls — the blocking/sorting *plan* over the current view, a
partition *fingerprint index*, the per-partition *decisions*, and the
matcher's similarity caches — so that the next batch of upserts and
deletes re-executes only the partitions the delta actually touched.

Correctness rests on two properties of the underlying pipeline:

* A partition's decisions are a pure function of its candidate pairs
  and the exact content of its member x-tuples (Section III: every
  stage downstream of reduction sees nothing else).  The fingerprint of
  a partition (:func:`~repro.reduction.plan.partition_fingerprint`)
  hashes exactly those inputs, so *equal fingerprint ⇒ bitwise-equal
  decisions* and retained slices can be spliced in verbatim.
* The session view (:class:`~repro.pdb.storage.SessionStore`) iterates
  in materialized-union order, so the refreshed plan — and therefore
  the merged decision sequence — equals the plan of a from-scratch
  detection over ``base ⊎ deltas``.

Staleness is safe by construction: a fingerprint that no longer
matches simply drops out of the retained index and its partition is
recomputed; retained state is never *wrongly* reused.

The session degrades gracefully to a full run: on the first
:meth:`~DetectionSession.detect` the retained index is empty, every
partition is stale, and the refresh is an ordinary plan-driven
execution (including pair-aware cache prewarming).  Subsequent
refreshes skip prewarming and instead retain the already-warm caches
across calls (``ExecutionSettings(retain_caches=True)`` freezes them
read-only around forks so parallel workers share them copy-on-write).
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Iterable

from repro.matching.decision import Decision, MatchStatus
from repro.matching.engine import XTupleDecision, XTupleDecisionProcedure
from repro.matching.executor import (
    DetectionResult,
    ExecutionEngine,
    ExecutionSettings,
    ExecutionReport,
    FaultObserver,
    ProgressObserver,
    RetryPolicy,
    cross_source_plan,
    plan_sources,
)
from repro.matching.executor.scheduler import DEFAULT_CHUNK_SIZE
from repro.pdb.storage import SessionJournal, SessionStore, XTupleStore
from repro.pdb.xtuples import XTuple
from repro.reduction import delta_plan, plan_fingerprints

#: Snapshot schema version; unknown versions are ignored on restore.
SNAPSHOT_FORMAT = 1

#: Scheduling modes a session may use (striped execution has no plan,
#: hence nothing to fingerprint or retain).
SESSION_SCHEDULING = ("partitioned", "stealing")


@dataclass
class SessionStats:
    """Cumulative counters of one session's incremental behaviour."""

    #: Ingest batches applied.
    ingests: int = 0
    #: Refreshes run (initial detect included).
    refreshes: int = 0
    #: Upserts / deletes in the most recent ingest batch.
    last_upserts: int = 0
    last_deletes: int = 0
    #: Partitions across all refreshed plans / reused verbatim /
    #: re-executed because their fingerprint changed.
    partitions_planned: int = 0
    partitions_reused: int = 0
    partitions_executed: int = 0
    #: Candidate pairs across all refreshed plans / actually re-decided.
    pairs_planned: int = 0
    pairs_executed: int = 0
    #: Previously reported pairs retracted by later refreshes.
    tombstoned_pairs: int = 0
    #: Safety-gate trips observed across refreshes (a calibrated model
    #: whose gates tripped counts its trips once per refresh — every
    #: refresh it force-decides UNSURE is one more audit-worthy event).
    gate_trips: int = 0

    def summary(self) -> str:
        """One-line operator summary of the session so far."""
        line = (
            f"ingests={self.ingests} refreshes={self.refreshes} "
            f"partitions {self.partitions_reused} reused / "
            f"{self.partitions_executed} executed of "
            f"{self.partitions_planned} planned; "
            f"pairs {self.pairs_executed}/{self.pairs_planned} decided, "
            f"{self.tombstoned_pairs} tombstoned"
        )
        if self.gate_trips:
            line += f"; {self.gate_trips} gate trips (forced UNSURE)"
        return line


class DetectionSession:
    """A persistent, incrementally refreshable detection.

    Build one through :meth:`~repro.matching.DuplicateDetector.session`
    — the detector resolves its configured procedure (floors, kernel
    backend) and prepares the base relation exactly as ``detect``
    would, so the session's first result is bitwise-identical to a
    one-shot ``detect`` over the same input.

    Parameters
    ----------
    procedure:
        The resolved Figure-6 decision procedure.
    reducer:
        The detector's search-space reduction strategy (planner and,
        under stealing, the sub-key splitter).
    base:
        The prepared base relation or store the session overlays.
    journal:
        Optional session directory (or an opened
        :class:`~repro.pdb.storage.SessionJournal`).  When given, the
        journal's operations are replayed over the base on startup, the
        snapshot's similarity-cache entries and fingerprint index are
        restored, and every ingest appends its operations durably.
    within_sources:
        ``False`` restricts every refresh to cross-source pairs
        (:func:`~repro.matching.executor.cross_source_plan`) — the
        paper's ℛ1/ℛ2 consolidation question with the session delta as
        one more autonomous source.
    """

    def __init__(
        self,
        procedure: XTupleDecisionProcedure,
        reducer,
        base: XTupleStore,
        *,
        journal: SessionJournal | str | None = None,
        within_sources: bool = True,
        chunk_size: int | None = None,
        n_jobs: int | None = 1,
        keep_derivations: bool = True,
        keep_compared_pairs: bool = True,
        scheduling: str = "partitioned",
        prewarm: bool | None = None,
        prewarm_budget: int | None = None,
        split_pairs: int | None = None,
        kernel_backend: str = "auto",
        retry: RetryPolicy | None = None,
        on_error: str = "raise",
        on_progress: ProgressObserver | None = None,
        on_fault: FaultObserver | None = None,
        audit: str | os.PathLike | bool | None = None,
        floors=None,
    ) -> None:
        if scheduling not in SESSION_SCHEDULING:
            raise ValueError(
                f"unknown session scheduling {scheduling!r}; "
                f"expected one of {SESSION_SCHEDULING}"
            )
        self._procedure = procedure
        self._reducer = reducer
        self._store = SessionStore(base)
        self._within_sources = within_sources
        self._chunk_size = (
            DEFAULT_CHUNK_SIZE if chunk_size is None else chunk_size
        )
        self._n_jobs = (
            multiprocessing.cpu_count() if n_jobs is None else n_jobs
        )
        self._keep_derivations = keep_derivations
        self._keep_compared_pairs = keep_compared_pairs
        self._scheduling = scheduling
        self._prewarm = prewarm
        self._prewarm_budget = prewarm_budget
        self._split_pairs = split_pairs
        self._backend = kernel_backend
        self._retry = retry
        self._on_error = on_error
        self._on_progress = on_progress
        self._on_fault = on_fault
        self._audit = audit
        self._floors = floors

        #: Memoized per-tuple content fingerprints, invalidated on
        #: upsert/delete of the id.
        self._tuple_fps: dict[str, str] = {}
        #: Fingerprint → retained per-partition decision slice.
        self._retained: dict[str, tuple[XTupleDecision, ...]] = {}
        #: Pairs the current result covers, in plan order.
        self._previous_pairs: tuple[tuple[str, str], ...] = ()
        self._result: DetectionResult | None = None

        self.stats = SessionStats()
        #: Report of the most recent refresh's execution (the *delta*
        #: plan), ``None`` until a refresh executes at least one
        #: partition.
        self.last_report: ExecutionReport | None = None
        #: Pairs retracted by the most recent refresh.
        self.tombstones: tuple[tuple[str, str], ...] = ()
        #: One :class:`~repro.audit.AuditManifest` per refresh, when the
        #: session was opened with ``audit`` (oldest first).
        self.manifests: list = []

        if isinstance(journal, str):
            journal = SessionJournal(journal)
        self._journal = journal
        if self._journal is not None:
            self._journal.replay_into(self._store)
            self._restore_snapshot()

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------

    @property
    def store(self) -> SessionStore:
        """The session's overlay view (read it; mutate via ingest)."""
        return self._store

    @property
    def journal(self) -> SessionJournal | None:
        """The session's journal, when persistent."""
        return self._journal

    def detect(self) -> DetectionResult:
        """The current result, running the initial detection if needed."""
        if self._result is None:
            return self.refresh()
        return self._result

    def ingest(
        self,
        upserts: Iterable[XTuple] = (),
        *,
        deletes: Iterable[str] = (),
    ) -> DetectionResult:
        """Apply one delta batch and refresh, re-deciding only touched
        partitions.

        Upserts of known ids replace the stored x-tuple; new ids append
        after the base in arrival order.  Operations are journaled (when
        the session is persistent) *before* the refresh, so a crash
        mid-refresh replays to the post-ingest view.
        """
        operations: list[dict] = []
        upserted = 0
        for xtuple in upserts:
            self._store.upsert(xtuple)
            self._tuple_fps.pop(xtuple.tuple_id, None)
            operations.append(SessionJournal.upsert_op(xtuple))
            upserted += 1
        deleted = 0
        for tuple_id in deletes:
            self._store.delete(tuple_id)
            self._tuple_fps.pop(tuple_id, None)
            operations.append(SessionJournal.delete_op(tuple_id))
            deleted += 1
        if self._journal is not None and operations:
            self._journal.append_ops(operations)
        self.stats.ingests += 1
        self.stats.last_upserts = upserted
        self.stats.last_deletes = deleted
        result = self.refresh()
        if self._journal is not None:
            self.save()
        return result

    def refresh(self) -> DetectionResult:
        """Re-plan the view and re-execute only fingerprint-stale
        partitions, splicing retained decisions in plan order."""
        view = self._store
        plan = plan_sources(self._reducer, view)
        if not self._within_sources:
            plan = cross_source_plan(plan, view)
        fingerprints = plan_fingerprints(
            view, plan, tuple_fingerprints=self._tuple_fps
        )
        stale = delta_plan(plan, fingerprints, self._retained)

        executed: dict[str, tuple[XTupleDecision, ...]] = {}
        if stale.partitions:
            engine = ExecutionEngine(
                self._procedure,
                self._settings(retain=self.stats.refreshes > 0),
                splitter=self._reducer,
                observer=self._on_progress,
                fault_observer=self._on_fault,
            )
            # Published before execution so a raising refresh still
            # exposes the partial counters (matching detect()).
            self.last_report = engine.report
            stale_fps = [
                fingerprint
                for fingerprint in fingerprints
                if fingerprint not in self._retained
            ]
            index = 0
            for piece in engine.execute(view, stale):
                # Under on_error="skip" supervision may drop slices;
                # realign by label (slices arrive in plan order).
                while (
                    index < len(stale.partitions)
                    and stale.partitions[index].label != piece.partition_label
                ):
                    index += 1
                if index == len(stale.partitions):
                    break
                executed[stale_fps[index]] = piece.decisions
                index += 1

        decisions: list[XTupleDecision] = []
        covered: list[tuple[str, str]] = []
        retained: dict[str, tuple[XTupleDecision, ...]] = {}
        partition_counts: dict[str, list[int]] = {}
        skipped: list[str] = []
        reused = 0
        for partition, fingerprint in zip(plan.partitions, fingerprints):
            if fingerprint in self._retained:
                slice_decisions = self._retained[fingerprint]
                reused += 1
            elif fingerprint in executed:
                slice_decisions = executed[fingerprint]
            else:
                skipped.append(partition.label)
                continue  # partition skipped by on_error="skip"
            retained[fingerprint] = slice_decisions
            decisions.extend(slice_decisions)
            covered.extend(partition.pairs)
            if self._audit:
                counts = [0, 0, 0]
                for decided in slice_decisions:
                    status = decided.decision.status.value
                    counts["mpu".index(status)] += 1
                partition_counts[partition.label] = counts

        current = set(covered)
        self.tombstones = tuple(
            pair for pair in self._previous_pairs if pair not in current
        )
        self._previous_pairs = tuple(covered)
        self._retained = retained

        self.stats.refreshes += 1
        self.stats.partitions_planned += len(plan.partitions)
        self.stats.partitions_executed += len(executed)
        self.stats.partitions_reused += reused
        self.stats.pairs_planned += plan.total_pairs
        self.stats.pairs_executed += stale.total_pairs
        self.stats.tombstoned_pairs += len(self.tombstones)
        self.stats.gate_trips += len(self.gate_trips)

        if self._audit:
            self._record_manifest(fingerprints, partition_counts, skipped)

        self._result = DetectionResult(
            decisions=tuple(decisions),
            compared_pairs=(
                frozenset(covered)
                if self._keep_compared_pairs
                else frozenset()
            ),
            relation_size=len(view),
        )
        return self._result

    @property
    def gate_trips(self) -> tuple:
        """The decision model's tripped safety gates (empty when sane).

        Non-empty exactly when the session's model is a
        :class:`~repro.matching.decision.CalibratedModel` whose
        calibration failed a gate — every refresh then force-decides
        UNSURE, and :attr:`SessionStats.gate_trips` accumulates one
        count per trip per refresh.
        """
        return tuple(getattr(self._procedure.model, "gate_trips", ()))

    def _record_manifest(
        self,
        fingerprints,
        partition_counts: dict[str, list[int]],
        skipped: list[str],
    ) -> None:
        """Append (and possibly write) this refresh's audit manifest.

        Reuses the plan fingerprints the refresh already computed, so
        auditing adds no extra content hashing; the manifest is built
        exactly as ``DuplicateDetector.detect(audit=...)`` builds one,
        so a session refresh over some view fingerprints identically
        to a from-scratch audited detection over the same content.
        """
        from repro.audit import build_manifest

        manifest = build_manifest(
            procedure=self._procedure,
            plan_fingerprints=fingerprints,
            partition_counts=partition_counts,
            floors=self._floors,
            failures=skipped,
            environment={
                "n_jobs": self._n_jobs,
                "scheduling": self._scheduling,
                "kernel_backend": self._backend,
                "storage": type(self._store).__name__,
                "model": type(self._procedure.model).__name__,
                "refresh": self.stats.refreshes,
            },
        )
        self.manifests.append(manifest)
        if not isinstance(self._audit, bool):
            directory = os.fspath(self._audit)
            os.makedirs(directory, exist_ok=True)
            manifest.write(
                os.path.join(
                    directory,
                    f"manifest-{self.stats.refreshes:04d}.json",
                )
            )

    def cache_hit_rates(self) -> dict[str, float]:
        """Per-attribute similarity-cache hit rates (live counters)."""
        return {
            attribute: cache.hit_rate
            for attribute, cache in self._matcher.cache_stats().items()
        }

    def save(self) -> None:
        """Persist the snapshot (cache entries, retained index)."""
        if self._journal is None:
            raise ValueError("session has no journal to save into")
        self._journal.save_snapshot(self._snapshot_document())

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @property
    def _matcher(self):
        return self._procedure.matcher

    def _settings(self, *, retain: bool) -> ExecutionSettings:
        options: dict = dict(
            chunk_size=self._chunk_size,
            n_jobs=self._n_jobs,
            keep_derivations=self._keep_derivations,
            keep_compared_pairs=self._keep_compared_pairs,
            scheduling=self._scheduling,
            kernel_backend=self._backend,
            on_error=self._on_error,
            retain_caches=retain,
        )
        if not retain:
            # Initial run prewarms like a one-shot detect; later runs
            # keep the already-warm caches instead.
            options["prewarm"] = self._prewarm
        if self._prewarm_budget is not None:
            options["prewarm_budget"] = self._prewarm_budget
        if self._split_pairs is not None:
            options["split_pairs"] = self._split_pairs
        if self._retry is not None:
            options["retry"] = self._retry
        return ExecutionSettings(**options)

    def _snapshot_document(self) -> dict:
        caches: dict[str, list] = {}
        for attribute, cache in self._matcher.cache_stats().items():
            entries = [
                [left, right, value]
                for left, right, value in cache.export_entries()
            ]
            if entries:
                caches[attribute] = entries
        document: dict = {"format": SNAPSHOT_FORMAT, "caches": caches}
        if not self._keep_derivations:
            # Decisions are portable only without derivation matrices;
            # JSON round-trips Python floats exactly, so restored
            # decisions stay bitwise-identical.
            retained: dict[str, list] = {}
            portable = True
            for fingerprint, slice_decisions in self._retained.items():
                rows = []
                for decision in slice_decisions:
                    if decision.derivation_input is not None:
                        portable = False
                        break
                    rows.append(
                        [
                            decision.left_id,
                            decision.right_id,
                            decision.decision.status.value,
                            decision.decision.similarity,
                        ]
                    )
                if not portable:
                    break
                retained[fingerprint] = rows
            if portable:
                document["retained"] = retained
        return document

    def _restore_snapshot(self) -> None:
        document = self._journal.load_snapshot()
        if not document or document.get("format") != SNAPSHOT_FORMAT:
            return
        live = self._matcher.cache_stats()
        for attribute, rows in (document.get("caches") or {}).items():
            cache = live.get(attribute)
            if cache is not None:
                cache.absorb(tuple(row) for row in rows)
        if self._keep_derivations:
            return
        for fingerprint, rows in (document.get("retained") or {}).items():
            self._retained[fingerprint] = tuple(
                XTupleDecision(
                    left_id,
                    right_id,
                    Decision(MatchStatus(status), float(similarity)),
                    None,
                )
                for left_id, right_id, status, similarity in rows
            )

    def __repr__(self) -> str:
        return (
            f"DetectionSession({self._store!r}, "
            f"retained={len(self._retained)}, "
            f"refreshes={self.stats.refreshes})"
        )


__all__ = [
    "DetectionSession",
    "SESSION_SCHEDULING",
    "SNAPSHOT_FORMAT",
    "SessionStats",
]
