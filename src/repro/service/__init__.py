"""Long-running incremental detection service.

The :class:`DetectionSession` front end keeps plan fingerprints,
per-partition decisions and similarity caches alive between detect
calls so that each ingested delta re-executes only the partitions it
touched; :mod:`repro.service.cli` wraps it in ``detect`` / ``ingest``
/ ``serve`` subcommands (``python -m repro.service``).  Sessions are
normally built through
:meth:`repro.matching.DuplicateDetector.session`.
"""

from repro.service.session import (
    SESSION_SCHEDULING,
    SNAPSHOT_FORMAT,
    DetectionSession,
    SessionStats,
)

__all__ = [
    "DetectionSession",
    "SESSION_SCHEDULING",
    "SNAPSHOT_FORMAT",
    "SessionStats",
]
