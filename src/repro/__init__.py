"""repro — duplicate detection in probabilistic data.

A complete reproduction of Panse, van Keulen, de Keijzer & Ritter,
*Duplicate Detection in Probabilistic Data* (ICDE 2010), as a
production-quality Python library:

* :mod:`repro.pdb` — probabilistic database substrate (values with ⊥,
  flat tuples, x-tuples, relations, possible worlds, conditioning,
  uncertain-key ranking);
* :mod:`repro.similarity` — comparison functions and the Equation-4/5
  lift to uncertain values;
* :mod:`repro.matching` — the core contribution: attribute matching,
  decision models (knowledge-based, Fellegi–Sunter + EM), derivation
  functions (Equations 6–9), the Figure-6 procedures and the five-step
  pipeline;
* :mod:`repro.reduction` — search-space reduction adapted to
  probabilistic data (SNM and blocking families, Section V);
* :mod:`repro.preparation` / :mod:`repro.verification` — pipeline
  steps A and E;
* :mod:`repro.datagen` — synthetic probabilistic data with ground truth;
* :mod:`repro.experiments` — figure-by-figure paper reproductions and
  the Tier-B studies.

Quickstart
----------
>>> from repro.datagen import generate_dataset
>>> from repro.matching import (AttributeMatcher, CombinedDecisionModel,
...     DuplicateDetector, ThresholdClassifier, WeightedSum)
>>> from repro.similarity import JARO_WINKLER
>>> dataset = generate_dataset(entity_count=30, seed=1)
>>> detector = DuplicateDetector(
...     AttributeMatcher({"name": JARO_WINKLER, "job": JARO_WINKLER}),
...     CombinedDecisionModel(WeightedSum({"name": 0.7, "job": 0.3}),
...                           ThresholdClassifier(0.85, 0.65)),
... )
>>> result = detector.detect(dataset.relation)
>>> len(result.matches) > 0
True
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
