"""Threshold pushdown: derivation-aware ``min_similarity`` floors.

The paper's decision models only *act* on similarity degrees through
their classifier thresholds (T_λ/T_μ of Figure 2), yet attribute value
matching computes every similarity exactly.  This module inverts the
decision layer: it asks a model for the **weakest per-attribute
similarity that could still influence any matching decision** and packs
the answer into a :class:`SimilarityFloors` object the pipeline pushes
down — through :meth:`repro.matching.comparison.AttributeMatcher.with_floors`
and :meth:`repro.similarity.uncertain.UncertainValueComparator.with_min_similarity`
— into the banded kernels of :mod:`repro.similarity.kernels`, which may
then stop computing as soon as a similarity provably falls below its
floor.

Why this is *exact* for the supported models
--------------------------------------------

The implemented decision models consume attribute similarities only
through step functions:

* a rule condition fires iff ``c_a > t`` (Figure 1), so every value of
  ``c_a`` below the weakest condition threshold on attribute *a* yields
  the same rule outcome — and therefore bitwise the same combined
  certainty;
* Fellegi–Sunter (and its EM-estimated variant) reduces ``c_a`` to the
  agreement bit ``γ_a = [c_a ≥ agreement_threshold]`` before Equations
  1–2, so every value below the agreement threshold yields bitwise the
  same matching weight ``R``.

Below those step points the *exact* similarity value is unobservable:
replacing it with 0.0 (the banded kernels' "below cutoff" answer)
changes no comparison vector consumer's output bit.  Because the
Figure-6 derivation functions ϑ (Equations 6–9, the expected matching
result — everything in :data:`repro.matching.derivation.DERIVATIONS`)
see alternative pairs only through those per-cell model outputs
(:class:`~repro.matching.derivation.DerivationInput` carries per-pair
similarities, statuses and weights, never raw comparison vectors), the
invariance survives both derivation variants and any final T_λ/T_μ
classification unchanged — pruned and exact detection agree bitwise on
*every* pair, accepted or not, which is stronger than the
accepted-pairs guarantee the golden suite
(``tests/test_threshold_pushdown.py``) pins.

:func:`derive_floors` is the entry point: it performs that inversion
for a concrete (model, derivation ϑ, final classifier) configuration
and returns ``None`` whenever safety cannot be proven (e.g. a
``WeightedSum`` combiner, whose output varies continuously with every
attribute), in which case the pipeline silently keeps the exact path.

>>> from repro.matching.decision.rules import (
...     IdentificationRule, RuleBasedModel,
... )
>>> from repro.matching.decision.base import ThresholdClassifier
>>> model = RuleBasedModel(
...     [IdentificationRule.build(
...         [("name", 0.8), ("job", 0.5)], certainty=0.8
...     )],
...     ThresholdClassifier(0.7),
... )
>>> floors = derive_floors(model)
>>> floors.floor("name"), floors.floor("job")
(0.8, 0.5)
>>> floors.floor("salary")  # never conditioned: value is unobservable
1.0
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field


@dataclass(frozen=True)
class SimilarityFloors:
    """Per-attribute similarity floors for the pushdown path.

    Attributes
    ----------
    per_attribute:
        ``{attribute: floor}`` — attribute similarities strictly below
        their floor may be answered as 0.0 ("below cutoff") instead of
        exactly; similarities at or above the floor must stay exact.
    default:
        Floor for attributes not listed in :attr:`per_attribute`.  A
        rules model sets this to 1.0 (an attribute no rule conditions
        on is unobservable), Fellegi–Sunter to its agreement threshold.
    """

    per_attribute: Mapping[str, float] = field(default_factory=dict)
    default: float = 0.0

    def __post_init__(self) -> None:
        cleaned = {}
        for attribute, floor in dict(self.per_attribute).items():
            floor = float(floor)
            if not 0.0 <= floor <= 1.0:
                raise ValueError(
                    f"floor of {attribute!r} outside [0, 1]: {floor}"
                )
            cleaned[str(attribute)] = floor
        object.__setattr__(self, "per_attribute", cleaned)
        default = float(self.default)
        if not 0.0 <= default <= 1.0:
            raise ValueError(f"default floor outside [0, 1]: {default}")
        object.__setattr__(self, "default", default)

    @classmethod
    def uniform(cls, floor: float) -> "SimilarityFloors":
        """The same floor for every attribute."""
        return cls({}, default=floor)

    def floor(self, attribute: str) -> float:
        """The floor in force for *attribute*."""
        return self.per_attribute.get(attribute, self.default)

    @property
    def is_exact(self) -> bool:
        """Whether every floor is 0 (pruning would never engage)."""
        return self.default == 0.0 and not any(
            floor > 0.0 for floor in self.per_attribute.values()
        )

    def signature(self) -> tuple:
        """Hashable identity, for memoizing pruned pipeline clones."""
        return (
            tuple(sorted(self.per_attribute.items())),
            self.default,
        )

    def __repr__(self) -> str:
        listed = ", ".join(
            f"{attribute}≥{floor:g}"
            for attribute, floor in sorted(self.per_attribute.items())
        )
        return (
            f"SimilarityFloors({listed or '—'}, default={self.default:g})"
        )


def derive_floors(
    model, derivation=None, classifier=None
) -> SimilarityFloors | None:
    """Invert a decision configuration into safe pushdown floors.

    Parameters
    ----------
    model:
        The per-alternative decision model (step 1 of Figure 6).  Must
        expose ``attribute_floors()`` — implemented by
        :class:`~repro.matching.decision.rules.RuleBasedModel`,
        :class:`~repro.matching.decision.fellegi_sunter.FellegiSunterModel`
        (hence EM-estimated models via
        :meth:`~repro.matching.decision.em.EMEstimate.to_model`) and
        :class:`~repro.matching.decision.base.CombinedDecisionModel`
        over a step-function combiner such as
        :class:`~repro.matching.combination.LogLikelihoodRatio`.
    derivation:
        The ϑ of the x-tuple procedure, when one is configured.  Floors
        are φ-level invariance points, so they are valid for exactly
        those derivations that consume alternative pairs through the
        per-cell model outputs — i.e. through
        :class:`~repro.matching.derivation.DerivationInput`.  Every
        registered derivation (Equations 6–9 and friends) does, which
        is recognized by the protocol's ``requires_statuses`` flag; a
        custom ϑ without the flag cannot be proven safe and disables
        pruning.
    classifier:
        The final T_λ/T_μ classifier (step 3).  Classification consumes
        only the derived similarity, which the floors already hold
        invariant, so its thresholds never *weaken* a floor; it is
        accepted here so callers can pass the whole configuration and
        future models may derive genuinely threshold-dependent cutoffs.

    Returns
    -------
    SimilarityFloors | None
        The safe floors, or ``None`` when pruning must stay off (model
        without ``attribute_floors``, a non-step combiner, or an
        unrecognized derivation function).
    """
    supplier = getattr(model, "attribute_floors", None)
    if not callable(supplier):
        return None
    if derivation is not None and not hasattr(
        derivation, "requires_statuses"
    ):
        # Not a DerivationFunction: we cannot know what it reads, so we
        # cannot prove the φ-level invariance reaches its output.
        return None
    floors = supplier()
    if floors is None:
        return None
    if not isinstance(floors, SimilarityFloors):
        raise TypeError(
            f"{model!r}.attribute_floors() returned "
            f"{type(floors).__name__}, expected SimilarityFloors or None"
        )
    if floors.is_exact:
        return None
    return floors
