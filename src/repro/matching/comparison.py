"""Attribute value matching: comparison vectors and matrices.

Section III-C: "From comparing two tuples, we obtain a comparison vector
c⃗ = [c1, …, cn], where ci represents the similarity of the values from
the i-th attribute."  For x-tuple pairs (Section IV-B) one comparison
vector per *alternative pair* is produced, forming a ``k × l`` comparison
matrix.

The central class is :class:`AttributeMatcher`: it holds one uncertain-
value comparator per attribute and turns tuple pairs into comparison
vectors and x-tuple pairs into comparison matrices.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence
from typing import Any, Union

from repro.pdb.tuples import ProbabilisticTuple
from repro.pdb.values import ProbabilisticValue
from repro.pdb.xtuples import TupleAlternative, XTuple
from repro.similarity.base import Comparator
from repro.similarity.uncertain import UncertainValueComparator

#: Things an attribute matcher can compare: flat tuples or x-tuple alternatives.
Row = Union[ProbabilisticTuple, TupleAlternative]


class ComparisonVector:
    """The paper's c⃗: per-attribute similarities of one tuple pair.

    Behaves as an immutable sequence of floats while retaining the
    attribute names for reporting.
    """

    __slots__ = ("_attributes", "_values")

    def __init__(
        self, attributes: Sequence[str], values: Sequence[float]
    ) -> None:
        if len(attributes) != len(values):
            raise ValueError(
                f"{len(attributes)} attributes but {len(values)} similarities"
            )
        for attribute, value in zip(attributes, values):
            if not 0.0 <= value <= 1.0 + 1e-12:
                raise ValueError(
                    f"similarity of {attribute!r} outside [0, 1]: {value}"
                )
        self._attributes = tuple(attributes)
        self._values = tuple(min(float(v), 1.0) for v in values)

    @property
    def attributes(self) -> tuple[str, ...]:
        """Attribute names, aligned with :attr:`values`."""
        return self._attributes

    @property
    def values(self) -> tuple[float, ...]:
        """The similarities ``c1, …, cn``."""
        return self._values

    def similarity(self, attribute: str) -> float:
        """The similarity of one named attribute."""
        try:
            return self._values[self._attributes.index(attribute)]
        except ValueError:
            raise KeyError(attribute) from None

    def as_dict(self) -> dict[str, float]:
        """``{attribute: similarity}`` mapping."""
        return dict(zip(self._attributes, self._values))

    def __iter__(self) -> Iterator[float]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __getitem__(self, index: int) -> float:
        return self._values[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ComparisonVector):
            return NotImplemented
        return (
            self._attributes == other._attributes
            and self._values == other._values
        )

    def __hash__(self) -> int:
        return hash((self._attributes, self._values))

    def __repr__(self) -> str:
        body = ", ".join(
            f"{attr}={value:.4g}"
            for attr, value in zip(self._attributes, self._values)
        )
        return f"ComparisonVector({body})"


class ComparisonMatrix:
    """The paper's c⃗(t1, t2) = [c⃗11, …, c⃗kl] for an x-tuple pair.

    Element ``(i, j)`` is the comparison vector of alternative pair
    ``(t1ⁱ, t2ʲ)``.  Alternative probabilities are carried along because
    every derivation function needs them.
    """

    __slots__ = ("_vectors", "_left_probs", "_right_probs")

    def __init__(
        self,
        vectors: Sequence[Sequence[ComparisonVector]],
        left_probabilities: Sequence[float],
        right_probabilities: Sequence[float],
    ) -> None:
        if len(vectors) != len(left_probabilities):
            raise ValueError("row count must match left alternative count")
        for row in vectors:
            if len(row) != len(right_probabilities):
                raise ValueError(
                    "column count must match right alternative count"
                )
        self._vectors = tuple(tuple(row) for row in vectors)
        self._left_probs = tuple(float(p) for p in left_probabilities)
        self._right_probs = tuple(float(p) for p in right_probabilities)

    @property
    def shape(self) -> tuple[int, int]:
        """``(k, l)`` — alternative counts of the two x-tuples."""
        return (len(self._left_probs), len(self._right_probs))

    @property
    def left_probabilities(self) -> tuple[float, ...]:
        """Raw probabilities ``p(t1ⁱ)`` of the left alternatives."""
        return self._left_probs

    @property
    def right_probabilities(self) -> tuple[float, ...]:
        """Raw probabilities ``p(t2ʲ)`` of the right alternatives."""
        return self._right_probs

    def vector(self, i: int, j: int) -> ComparisonVector:
        """The comparison vector of alternative pair ``(i, j)``."""
        return self._vectors[i][j]

    def __getitem__(self, index: tuple[int, int]) -> ComparisonVector:
        i, j = index
        return self._vectors[i][j]

    def cells(self) -> Iterator[tuple[int, int, ComparisonVector]]:
        """Iterate ``(i, j, vector)`` in row-major order."""
        for i, row in enumerate(self._vectors):
            for j, vector in enumerate(row):
                yield i, j, vector

    def conditional_weight(self, i: int, j: int) -> float:
        """``p(t1ⁱ)/p(t1) · p(t2ʲ)/p(t2)`` — the Eq. 6/8/9 pair weight.

        This is the probability of the possible world (restricted to the
        two x-tuples) in which alternatives *i* and *j* co-occur,
        conditioned on both tuples being present (event B).
        """
        left_total = sum(self._left_probs)
        right_total = sum(self._right_probs)
        return (
            self._left_probs[i]
            / left_total
            * self._right_probs[j]
            / right_total
        )

    def __repr__(self) -> str:
        k, l = self.shape
        return f"ComparisonMatrix({k}×{l})"


class AttributeMatcher:
    """Turns tuple pairs into comparison vectors / matrices.

    Parameters
    ----------
    comparators:
        Mapping from attribute name to a comparator.  Plain comparators on
        certain values are lifted automatically with
        :class:`UncertainValueComparator` (Equation 5); pass an
        :class:`UncertainValueComparator` directly to control pattern
        policy or to select the error-free Equation 4.
        Attributes missing from the mapping fall back to *default*.
    default:
        Comparator used for attributes without an explicit entry; when
        ``None`` (default), comparing an unconfigured attribute raises.
    """

    def __init__(
        self,
        comparators: Mapping[str, Comparator | UncertainValueComparator],
        *,
        default: Comparator | UncertainValueComparator | None = None,
    ) -> None:
        self._comparators: dict[str, UncertainValueComparator] = {
            str(attr): self._lift(comparator)
            for attr, comparator in comparators.items()
        }
        self._default = self._lift(default) if default is not None else None

    @staticmethod
    def _lift(
        comparator: Comparator | UncertainValueComparator,
    ) -> UncertainValueComparator:
        if isinstance(comparator, UncertainValueComparator):
            return comparator
        return UncertainValueComparator(comparator)

    def comparator_for(self, attribute: str) -> UncertainValueComparator:
        """The configured comparator for *attribute*."""
        comparator = self._comparators.get(attribute, self._default)
        if comparator is None:
            raise KeyError(
                f"no comparator configured for attribute {attribute!r} "
                "and no default given"
            )
        return comparator

    # ------------------------------------------------------------------
    # Vector level
    # ------------------------------------------------------------------

    def compare_values(
        self,
        attribute: str,
        left: ProbabilisticValue | Any,
        right: ProbabilisticValue | Any,
    ) -> float:
        """Expected similarity of one attribute value pair (Eq. 4/5)."""
        return self.comparator_for(attribute)(left, right)

    def compare_rows(self, left: Row, right: Row) -> ComparisonVector:
        """Comparison vector of two rows (flat tuples or alternatives).

        The attribute set is taken from the left row; both rows must share
        the schema (guaranteed when they come from unioned relations).
        """
        attributes = list(left.attributes)
        values = [
            self.compare_values(attr, left.value(attr), right.value(attr))
            for attr in attributes
        ]
        return ComparisonVector(attributes, values)

    # ------------------------------------------------------------------
    # Matrix level
    # ------------------------------------------------------------------

    def compare_xtuples(self, left: XTuple, right: XTuple) -> ComparisonMatrix:
        """The ``k × l`` comparison matrix of an x-tuple pair."""
        vectors = [
            [
                self.compare_rows(left_alt, right_alt)
                for right_alt in right.alternatives
            ]
            for left_alt in left.alternatives
        ]
        return ComparisonMatrix(
            vectors,
            [alt.probability for alt in left.alternatives],
            [alt.probability for alt in right.alternatives],
        )
