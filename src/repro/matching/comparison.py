"""Attribute value matching: comparison vectors and matrices.

Section III-C: "From comparing two tuples, we obtain a comparison vector
c⃗ = [c1, …, cn], where ci represents the similarity of the values from
the i-th attribute."  For x-tuple pairs (Section IV-B) one comparison
vector per *alternative pair* is produced, forming a ``k × l`` comparison
matrix.

The central class is :class:`AttributeMatcher`: it holds one uncertain-
value comparator per attribute and turns tuple pairs into comparison
vectors and x-tuple pairs into comparison matrices.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence
from typing import Any, Union

import numpy as np

from repro.pdb.tuples import ProbabilisticTuple
from repro.pdb.values import ProbabilisticValue
from repro.pdb.xtuples import TupleAlternative, XTuple
from repro.similarity.base import Comparator
from repro.similarity.kernels import SimilarityCache
from repro.similarity.uncertain import UncertainValueComparator

#: Things an attribute matcher can compare: flat tuples or x-tuple alternatives.
Row = Union[ProbabilisticTuple, TupleAlternative]


class ComparisonVector:
    """The paper's c⃗: per-attribute similarities of one tuple pair.

    Behaves as an immutable sequence of floats while retaining the
    attribute names for reporting.
    """

    __slots__ = ("_attributes", "_values", "_index")

    def __init__(
        self, attributes: Sequence[str], values: Sequence[float]
    ) -> None:
        if len(attributes) != len(values):
            raise ValueError(
                f"{len(attributes)} attributes but {len(values)} similarities"
            )
        for attribute, value in zip(attributes, values):
            if not 0.0 <= value <= 1.0 + 1e-12:
                raise ValueError(
                    f"similarity of {attribute!r} outside [0, 1]: {value}"
                )
        self._attributes = tuple(attributes)
        self._values = tuple(min(float(v), 1.0) for v in values)
        self._index: dict[str, int] | None = None

    @classmethod
    def trusted(
        cls, attributes: tuple[str, ...], values: tuple[float, ...]
    ) -> "ComparisonVector":
        """Hot-path constructor that skips per-element validation.

        Callers must guarantee aligned tuples with similarities already
        in ``[0, 1]`` (true for everything produced by an
        :class:`UncertainValueComparator`, whose results are convex
        combinations of normalized base similarities).
        """
        vector = cls.__new__(cls)
        vector._attributes = attributes
        vector._values = values
        vector._index = None
        return vector

    @property
    def attributes(self) -> tuple[str, ...]:
        """Attribute names, aligned with :attr:`values`."""
        return self._attributes

    @property
    def values(self) -> tuple[float, ...]:
        """The similarities ``c1, …, cn``."""
        return self._values

    def similarity(self, attribute: str) -> float:
        """The similarity of one named attribute."""
        index = self._index
        if index is None:
            index = {
                name: pos for pos, name in enumerate(self._attributes)
            }
            self._index = index
        try:
            return self._values[index[attribute]]
        except KeyError:
            raise KeyError(attribute) from None

    def as_dict(self) -> dict[str, float]:
        """``{attribute: similarity}`` mapping."""
        return dict(zip(self._attributes, self._values))

    def __iter__(self) -> Iterator[float]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __getitem__(self, index: int) -> float:
        return self._values[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ComparisonVector):
            return NotImplemented
        return (
            self._attributes == other._attributes
            and self._values == other._values
        )

    def __hash__(self) -> int:
        return hash((self._attributes, self._values))

    def __repr__(self) -> str:
        body = ", ".join(
            f"{attr}={value:.4g}"
            for attr, value in zip(self._attributes, self._values)
        )
        return f"ComparisonVector({body})"


class ComparisonMatrix:
    """The paper's c⃗(t1, t2) = [c⃗11, …, c⃗kl] for an x-tuple pair.

    Element ``(i, j)`` is the comparison vector of alternative pair
    ``(t1ⁱ, t2ʲ)``.  Alternative probabilities are carried along because
    every derivation function needs them.
    """

    __slots__ = (
        "_vectors",
        "_left_probs",
        "_right_probs",
        "_weights",
        "_weight_array",
    )

    def __init__(
        self,
        vectors: Sequence[Sequence[ComparisonVector]],
        left_probabilities: Sequence[float],
        right_probabilities: Sequence[float],
    ) -> None:
        if len(vectors) != len(left_probabilities):
            raise ValueError("row count must match left alternative count")
        for row in vectors:
            if len(row) != len(right_probabilities):
                raise ValueError(
                    "column count must match right alternative count"
                )
        self._init_trusted(
            tuple(tuple(row) for row in vectors),
            tuple(float(p) for p in left_probabilities),
            tuple(float(p) for p in right_probabilities),
        )

    @classmethod
    def trusted(
        cls,
        vectors: tuple[tuple[ComparisonVector, ...], ...],
        left_probabilities: tuple[float, ...],
        right_probabilities: tuple[float, ...],
    ) -> "ComparisonMatrix":
        """Hot-path constructor that skips shape validation.

        Callers must pass well-formed nested tuples whose row/column
        counts match the probability tuples (guaranteed when the
        matrix comes straight out of :meth:`AttributeMatcher.compare_xtuples`).
        """
        matrix = cls.__new__(cls)
        matrix._init_trusted(
            vectors, left_probabilities, right_probabilities
        )
        return matrix

    def _init_trusted(
        self,
        vectors: tuple[tuple[ComparisonVector, ...], ...],
        left_probabilities: tuple[float, ...],
        right_probabilities: tuple[float, ...],
    ) -> None:
        self._vectors = vectors
        self._left_probs = left_probabilities
        self._right_probs = right_probabilities
        # The Eq. 6/8/9 conditional pair weights p(t1ⁱ)/p(t1)·p(t2ʲ)/p(t2),
        # built once as the normalized outer product instead of re-summing
        # the alternative probabilities for every cell.  Plain tuples:
        # matrices are usually tiny (1×1 for flat pairs), where scalar
        # math beats array dispatch; the numpy view is created lazily.
        left_total = sum(left_probabilities)
        right_total = sum(right_probabilities)
        left_conditional = [p / left_total for p in left_probabilities]
        right_conditional = [p / right_total for p in right_probabilities]
        self._weights = tuple(
            tuple(lp * rp for rp in right_conditional)
            for lp in left_conditional
        )
        self._weight_array: np.ndarray | None = None

    @property
    def shape(self) -> tuple[int, int]:
        """``(k, l)`` — alternative counts of the two x-tuples."""
        return (len(self._left_probs), len(self._right_probs))

    @property
    def left_probabilities(self) -> tuple[float, ...]:
        """Raw probabilities ``p(t1ⁱ)`` of the left alternatives."""
        return self._left_probs

    @property
    def right_probabilities(self) -> tuple[float, ...]:
        """Raw probabilities ``p(t2ʲ)`` of the right alternatives."""
        return self._right_probs

    def vector(self, i: int, j: int) -> ComparisonVector:
        """The comparison vector of alternative pair ``(i, j)``."""
        return self._vectors[i][j]

    def __getitem__(self, index: tuple[int, int]) -> ComparisonVector:
        i, j = index
        return self._vectors[i][j]

    def rows(self) -> tuple[tuple[ComparisonVector, ...], ...]:
        """All comparison vectors as row-major nested tuples."""
        return self._vectors

    def cells(self) -> Iterator[tuple[int, int, ComparisonVector]]:
        """Iterate ``(i, j, vector)`` in row-major order."""
        for i, row in enumerate(self._vectors):
            for j, vector in enumerate(row):
                yield i, j, vector

    @property
    def weights(self) -> tuple[tuple[float, ...], ...]:
        """Row-major conditional pair weights, precomputed once.

        Rows sum to the left conditional probabilities and the whole
        matrix sums to 1.
        """
        return self._weights

    @property
    def weight_matrix(self) -> np.ndarray:
        """Read-only ``(k, l)`` numpy view of :attr:`weights`.

        Materialized on first access and cached for the matrix lifetime.
        """
        if self._weight_array is None:
            array = np.asarray(self._weights, dtype=np.float64)
            array.setflags(write=False)
            self._weight_array = array
        return self._weight_array

    def conditional_weight(self, i: int, j: int) -> float:
        """``p(t1ⁱ)/p(t1) · p(t2ʲ)/p(t2)`` — the Eq. 6/8/9 pair weight.

        This is the probability of the possible world (restricted to the
        two x-tuples) in which alternatives *i* and *j* co-occur,
        conditioned on both tuples being present (event B).
        """
        return self._weights[i][j]

    def __repr__(self) -> str:
        k, l = self.shape
        return f"ComparisonMatrix({k}×{l})"


class AttributeMatcher:
    """Turns tuple pairs into comparison vectors / matrices.

    Parameters
    ----------
    comparators:
        Mapping from attribute name to a comparator.  Plain comparators on
        certain values are lifted automatically with
        :class:`UncertainValueComparator` (Equation 5); pass an
        :class:`UncertainValueComparator` directly to control pattern
        policy or to select the error-free Equation 4.
        Attributes missing from the mapping fall back to *default*.
    default:
        Comparator used for attributes without an explicit entry; when
        ``None`` (default), comparing an unconfigured attribute raises.
    cache:
        When true, every lifted comparator memoizes its domain-element
        comparisons in a private
        :class:`~repro.similarity.kernels.SimilarityCache` (pre-built
        :class:`UncertainValueComparator` instances keep whatever cache
        configuration they were constructed with).  Caching never changes
        results — only how often the base comparator actually runs.
    """

    def __init__(
        self,
        comparators: Mapping[str, Comparator | UncertainValueComparator],
        *,
        default: Comparator | UncertainValueComparator | None = None,
        cache: bool = False,
    ) -> None:
        self._cache_enabled = bool(cache)
        self._comparators: dict[str, UncertainValueComparator] = {
            str(attr): self._lift(comparator)
            for attr, comparator in comparators.items()
        }
        self._default = self._lift(default) if default is not None else None

    def _lift(
        self,
        comparator: Comparator | UncertainValueComparator,
    ) -> UncertainValueComparator:
        if isinstance(comparator, UncertainValueComparator):
            return comparator
        return UncertainValueComparator(
            comparator, cache=self._cache_enabled
        )

    def with_floors(self, floors) -> "AttributeMatcher":
        """A matcher whose comparators prune below per-attribute floors.

        The threshold-pushdown seam: *floors* (a
        :class:`~repro.matching.pushdown.SimilarityFloors`, normally
        derived from the decision model via
        :func:`~repro.matching.pushdown.derive_floors`) is distributed
        over the per-attribute comparators with
        :meth:`~repro.similarity.uncertain.UncertainValueComparator.with_min_similarity`.
        Comparators whose base cannot prune (no banded kernel) are
        reused unchanged, as is the matcher itself when no floor is
        positive.  Exact domain-element caches are *shared* between the
        original and the clone; banded caches are drawn per band from
        :meth:`~repro.similarity.kernels.SimilarityCache.banded`, so
        repeated calls with the same floors hit the same warmed tables.
        """
        changed = False
        comparators: dict[str, UncertainValueComparator] = {}
        for attribute, comparator in self._comparators.items():
            pruned = comparator.with_min_similarity(floors.floor(attribute))
            changed = changed or pruned is not comparator
            comparators[attribute] = pruned
        default = self._default
        if default is not None:
            # Attributes the floors name explicitly but the matcher
            # serves through the default comparator get a dedicated
            # floor-configured entry; the default itself prunes at the
            # floors' default level.
            for attribute, floor in floors.per_attribute.items():
                if attribute not in comparators:
                    comparators[attribute] = default.with_min_similarity(
                        floor
                    )
                    changed = (
                        changed or comparators[attribute] is not default
                    )
            default = default.with_min_similarity(floors.default)
            changed = changed or default is not self._default
        if not changed:
            return self
        # The constructor passes UncertainValueComparator instances
        # through _lift unchanged, so this shares the pruned clones.
        return AttributeMatcher(
            comparators, default=default, cache=self._cache_enabled
        )

    def with_backend(self, backend) -> "AttributeMatcher":
        """A matcher whose edit comparators run on a kernel backend.

        The kernel-backend seam: *backend* (a name like
        ``"bitparallel"`` / ``"numpy"`` or a resolved
        :class:`~repro.similarity.backends.KernelBackend`) is
        distributed over the per-attribute comparators with
        :meth:`~repro.similarity.uncertain.UncertainValueComparator.with_backend`.
        Comparators that are not backend-aware (Jaro–Winkler, custom
        functions, Equation 4) are reused unchanged, as is the matcher
        itself when nothing changes.  Every backend is pinned bitwise
        to the reference DPs, so results are identical; domain-element
        caches are shared between the original and the clone.
        """
        changed = False
        comparators: dict[str, UncertainValueComparator] = {}
        for attribute, comparator in self._comparators.items():
            switched = comparator.with_backend(backend)
            changed = changed or switched is not comparator
            comparators[attribute] = switched
        default = self._default
        if default is not None:
            default = default.with_backend(backend)
            changed = changed or default is not self._default
        if not changed:
            return self
        return AttributeMatcher(
            comparators, default=default, cache=self._cache_enabled
        )

    def cache_stats(self) -> dict[str, SimilarityCache]:
        """The live per-attribute caches, keyed by attribute name.

        Only attributes whose comparator actually carries a cache appear;
        inspect ``hits`` / ``misses`` / ``hit_rate`` on the values.
        """
        stats: dict[str, SimilarityCache] = {}
        for attr, comparator in self._comparators.items():
            if comparator.cache is not None:
                stats[attr] = comparator.cache
        if self._default is not None and self._default.cache is not None:
            stats["<default>"] = self._default.cache
        return stats

    def warm(
        self,
        vocabulary: Mapping[str, Sequence[Any]],
        *,
        budget: int | None = None,
    ) -> tuple[int, int, bool]:
        """Pre-warm the per-attribute caches from an observed vocabulary.

        For every attribute with a cache-carrying comparator, all
        pairwise domain-element similarities of its vocabulary are
        computed into the cache (see
        :meth:`~repro.similarity.kernels.SimilarityCache.warm`).  The
        execution planner calls this once per candidate partition before
        forking workers, so the forked processes inherit a hot, shared
        similarity table instead of each re-learning it.

        Parameters
        ----------
        vocabulary:
            ``{attribute: observed domain elements}``.
        budget:
            Optional total bound on pairs examined across all
            attributes.

        Returns
        -------
        (warmed, examined, complete):
            Entries newly stored, pairs examined (stored or already
            present — the caller's budget bookkeeping unit), and whether
            every attribute's full pairwise table fit within the budget
            and cache capacities (conservative: entries shared across
            calls may make an "incomplete" warm complete in practice).
        """
        warmed = 0
        examined = 0
        complete = True
        for attribute, values in vocabulary.items():
            comparator = self._comparators.get(attribute, self._default)
            if comparator is None or comparator.cache is None:
                continue
            cache = comparator.cache
            unique = comparator.cacheable_vocabulary(values)
            needed = len(unique) * (len(unique) - 1) // 2
            remaining = None if budget is None else budget - examined
            if remaining is not None and remaining <= 0:
                complete = complete and needed == 0
                continue
            if (remaining is not None and needed > remaining) or (
                len(cache) + needed > cache.max_entries
            ):
                complete = False
            warmed += cache.warm(unique, budget=remaining)
            examined += (
                min(needed, remaining) if remaining is not None else needed
            )
        return warmed, examined, complete

    def warm_pairs(
        self,
        value_pairs: Mapping[str, Sequence[tuple[Any, Any]]],
        *,
        budget: int | None = None,
    ) -> tuple[int, int, bool]:
        """Pre-warm the per-attribute caches from candidate value pairs.

        The pair-aware counterpart of :meth:`warm`: instead of the full
        pairwise square of each attribute's vocabulary, only the value
        combinations that actually occur across candidate tuple pairs
        (collected by
        :func:`repro.reduction.plan.partition_value_pairs`) are scored
        — window-family plans over-warm by roughly
        ``|span| / (2·(w−1))`` under the square, and the smaller
        working set is what the vectorized batch scorer
        (:meth:`~repro.similarity.kernels.SimilarityCache.warm_pairs`)
        encodes and scores in bulk.

        Same return contract as :meth:`warm`: ``(warmed, examined,
        complete)`` with *examined* counting pairs in the caller's
        budget bookkeeping unit.
        """
        warmed = 0
        examined = 0
        complete = True
        for attribute, pairs in value_pairs.items():
            comparator = self._comparators.get(attribute, self._default)
            if comparator is None or comparator.cache is None:
                continue
            cache = comparator.cache
            concrete = comparator.cacheable_pairs(pairs)
            needed = len(concrete)
            remaining = None if budget is None else budget - examined
            if remaining is not None and remaining <= 0:
                complete = complete and needed == 0
                continue
            if (remaining is not None and needed > remaining) or (
                len(cache) + needed > cache.max_entries
            ):
                complete = False
            warmed += cache.warm_pairs(concrete, budget=remaining)
            examined += (
                min(needed, remaining) if remaining is not None else needed
            )
        return warmed, examined, complete

    def freeze_caches(self) -> list[SimilarityCache]:
        """Freeze every live cache (read-only shared table for workers).

        Returns only the caches this call actually froze, so a caller
        can restore exactly its own freezes — caches the user froze
        beforehand (e.g. a shared immutable table) are left untouched
        on both freeze and the matching thaw.
        """
        newly_frozen: list[SimilarityCache] = []
        for cache in self.cache_stats().values():
            if not cache.frozen:
                cache.freeze()
                newly_frozen.append(cache)
        return newly_frozen

    def thaw_caches(self) -> None:
        """Thaw every live cache, regardless of who froze it."""
        for cache in self.cache_stats().values():
            cache.thaw()

    def comparator_for(self, attribute: str) -> UncertainValueComparator:
        """The configured comparator for *attribute*."""
        comparator = self._comparators.get(attribute, self._default)
        if comparator is None:
            raise KeyError(
                f"no comparator configured for attribute {attribute!r} "
                "and no default given"
            )
        return comparator

    # ------------------------------------------------------------------
    # Vector level
    # ------------------------------------------------------------------

    def compare_values(
        self,
        attribute: str,
        left: ProbabilisticValue | Any,
        right: ProbabilisticValue | Any,
    ) -> float:
        """Expected similarity of one attribute value pair (Eq. 4/5)."""
        return self.comparator_for(attribute)(left, right)

    def compare_rows(self, left: Row, right: Row) -> ComparisonVector:
        """Comparison vector of two rows (flat tuples or alternatives).

        The attribute set is taken from the left row; both rows must share
        the schema (guaranteed when they come from unioned relations).
        """
        attributes = left.attributes
        comparators = self._comparators
        default = self._default
        values: list[float] = []
        for attr in attributes:
            comparator = comparators.get(attr, default)
            if comparator is None:
                raise KeyError(
                    f"no comparator configured for attribute {attr!r} "
                    "and no default given"
                )
            value = comparator(left.value(attr), right.value(attr))
            # Same contract as ComparisonVector.__init__, inlined once
            # per value instead of re-looping in the constructor: loud
            # error outside [0, 1] (a user-pluggable base comparator may
            # not be normalized), round-off above 1 clamped.
            if value > 1.0:
                if value > 1.0 + 1e-12:
                    raise ValueError(
                        f"similarity of {attr!r} outside [0, 1]: {value}"
                    )
                value = 1.0
            elif not value >= 0.0:
                raise ValueError(
                    f"similarity of {attr!r} outside [0, 1]: {value}"
                )
            values.append(value)
        return ComparisonVector.trusted(tuple(attributes), tuple(values))

    # ------------------------------------------------------------------
    # Matrix level
    # ------------------------------------------------------------------

    def compare_xtuples(self, left: XTuple, right: XTuple) -> ComparisonMatrix:
        """The ``k × l`` comparison matrix of an x-tuple pair."""
        compare_rows = self.compare_rows
        right_alternatives = right.alternatives
        vectors = tuple(
            tuple(
                compare_rows(left_alt, right_alt)
                for right_alt in right_alternatives
            )
            for left_alt in left.alternatives
        )
        return ComparisonMatrix.trusted(
            vectors,
            tuple(alt.probability for alt in left.alternatives),
            tuple(alt.probability for alt in right.alternatives),
        )
