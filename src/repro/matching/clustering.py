"""Grouping pairwise match decisions into duplicate clusters.

Duplicate detection produces pairwise decisions; an integration process
(entity resolution, merge/purge [18], [19]) ultimately needs *groups* of
tuples representing the same real-world entity.  The standard closure is
transitive: if (a, b) and (b, c) are matches then {a, b, c} form one
cluster, implemented here with a union-find structure.

The module also reports *conflicts* — pairs inside one cluster that were
explicitly classified as non-matches.  Such inconsistencies are exactly
the cases the paper's outlook suggests representing as mutually exclusive
tuple sets in a probabilistic target model.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.matching.decision.base import MatchStatus


class UnionFind:
    """Disjoint sets over arbitrary hashable items (path compression)."""

    def __init__(self) -> None:
        self._parent: dict = {}
        self._rank: dict = {}

    def add(self, item) -> None:
        """Register *item* as its own singleton set (idempotent)."""
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0

    def find(self, item):
        """Canonical representative of *item*'s set."""
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:  # path compression
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, left, right) -> None:
        """Merge the sets containing *left* and *right*."""
        left_root, right_root = self.find(left), self.find(right)
        if left_root == right_root:
            return
        if self._rank[left_root] < self._rank[right_root]:
            left_root, right_root = right_root, left_root
        self._parent[right_root] = left_root
        if self._rank[left_root] == self._rank[right_root]:
            self._rank[left_root] += 1

    def groups(self) -> list[set]:
        """All sets with at least one member."""
        by_root: dict = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), set()).add(item)
        return list(by_root.values())


@dataclass(frozen=True)
class ClusteringResult:
    """Clusters plus consistency diagnostics.

    Attributes
    ----------
    clusters:
        Duplicate groups (size ≥ 2) as sorted tuples of tuple ids.
    singletons:
        Tuple ids that matched nothing.
    conflicts:
        Pairs classified UNMATCH that ended up in the same cluster via
        transitivity — candidates for clerical review.
    """

    clusters: tuple[tuple[str, ...], ...]
    singletons: tuple[str, ...]
    conflicts: tuple[tuple[str, str], ...] = field(default=())

    @property
    def duplicate_pairs(self) -> set[tuple[str, str]]:
        """All unordered in-cluster pairs implied by the clustering."""
        pairs: set[tuple[str, str]] = set()
        for cluster in self.clusters:
            for i, left in enumerate(cluster):
                for right in cluster[i + 1 :]:
                    pairs.add((left, right) if left <= right else (right, left))
        return pairs

    def cluster_of(self, tuple_id: str) -> tuple[str, ...] | None:
        """The cluster containing *tuple_id*, or ``None``."""
        for cluster in self.clusters:
            if tuple_id in cluster:
                return cluster
        return None


def cluster_matches(
    all_ids: Iterable[str],
    decided_pairs: Sequence[tuple[str, str, MatchStatus]],
    *,
    include_possible: bool = False,
) -> ClusteringResult:
    """Transitive closure of the match decisions.

    Parameters
    ----------
    all_ids:
        Every tuple id under consideration (so unmatched tuples appear as
        singletons).
    decided_pairs:
        ``(left_id, right_id, status)`` triples.
    include_possible:
        Whether POSSIBLE pairs also merge clusters (pessimistic closure);
        by default only definite matches do.
    """
    uf = UnionFind()
    ids = list(all_ids)
    for tuple_id in ids:
        uf.add(tuple_id)

    merge_statuses = {MatchStatus.MATCH}
    if include_possible:
        merge_statuses.add(MatchStatus.POSSIBLE)

    unmatch_pairs: list[tuple[str, str]] = []
    for left, right, status in decided_pairs:
        if status in merge_statuses:
            uf.union(left, right)
        elif status is MatchStatus.UNMATCH:
            unmatch_pairs.append((left, right))

    clusters: list[tuple[str, ...]] = []
    singletons: list[str] = []
    for group in uf.groups():
        ordered = tuple(sorted(group))
        if len(ordered) >= 2:
            clusters.append(ordered)
        else:
            singletons.append(ordered[0])

    conflicts = tuple(
        (left, right)
        for left, right in unmatch_pairs
        if uf.find(left) == uf.find(right)
    )
    clusters.sort()
    singletons.sort()
    return ClusteringResult(
        clusters=tuple(clusters),
        singletons=tuple(singletons),
        conflicts=conflicts,
    )
