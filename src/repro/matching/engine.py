"""The two adapted decision procedures of Figure 6.

:class:`XTupleDecisionProcedure` executes, for an x-tuple pair:

1. attribute value matching → comparison matrix (Section IV-B),
2. per-alternative-pair combination φ(c⃗ᵢⱼ) (step 1.1) and — for
   decision-based derivations — per-pair classification (step 1.2),
3. the derivation function ϑ (step 2),
4. final classification of the x-tuple pair into {M, P, U} (step 3).

The same engine covers the flat model of Section IV-A: a probabilistic
relation is embedded as 1-alternative x-tuples, the matrix degenerates to
1×1, ϑ is the identity on a single cell, and the procedure reduces
exactly to Figure 3 — tests assert this equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.matching.comparison import (
    AttributeMatcher,
    ComparisonMatrix,
)
from repro.matching.decision.base import (
    Decision,
    DecisionModel,
    MatchStatus,
    ThresholdClassifier,
)
from repro.matching.derivation import (
    DerivationFunction,
    DerivationInput,
    ExpectedSimilarity,
)
from repro.matching.pushdown import SimilarityFloors, derive_floors
from repro.pdb.tuples import ProbabilisticTuple
from repro.pdb.xtuples import XTuple


@dataclass(frozen=True)
class XTupleDecision:
    """Full record of one x-tuple pair decision.

    Attributes
    ----------
    left_id / right_id:
        Tuple identifiers.
    decision:
        The final classification (status + x-tuple similarity).
    derivation_input:
        The intermediate matrices, kept for explainability: per-pair
        similarities, per-pair statuses (decision-based only) and the
        conditional weights.  ``None`` when the pipeline ran with
        ``keep_derivations=False`` to bound memory on large runs.
    """

    left_id: str
    right_id: str
    decision: Decision
    derivation_input: DerivationInput | None

    @property
    def status(self) -> MatchStatus:
        """The matching value η of the x-tuple pair."""
        return self.decision.status

    @property
    def similarity(self) -> float:
        """The derived similarity sim(t1, t2)."""
        return self.decision.similarity


class XTupleDecisionProcedure:
    """Figure 6, both variants, behind one object.

    Parameters
    ----------
    matcher:
        Attribute matcher producing comparison matrices.
    model:
        The per-alternative decision model.  Its combination function is
        step 1.1; for decision-based derivations its classifier also runs
        step 1.2.
    derivation:
        The ϑ function (step 2).  Its ``requires_statuses`` flag selects
        between the similarity-based (left) and decision-based (right)
        variants of Figure 6.
    classifier:
        Final classifier for step 3.  Defaults to the model's classifier —
        appropriate when ϑ preserves the similarity scale (e.g. expected
        similarity of normalized degrees, or matching weights classified
        by the same R-thresholds, as in the paper's examples).
    """

    def __init__(
        self,
        matcher: AttributeMatcher,
        model: DecisionModel,
        derivation: DerivationFunction | None = None,
        *,
        classifier: ThresholdClassifier | None = None,
    ) -> None:
        self._matcher = matcher
        self._model = model
        self._derivation = (
            derivation if derivation is not None else ExpectedSimilarity()
        )
        self._final_classifier = (
            classifier if classifier is not None else model.classifier
        )

    @property
    def derivation(self) -> DerivationFunction:
        """The configured ϑ."""
        return self._derivation

    @property
    def matcher(self) -> AttributeMatcher:
        """The attribute matcher (exposed for cache pre-warming)."""
        return self._matcher

    @property
    def model(self) -> DecisionModel:
        """The per-alternative decision model (steps 1.1/1.2)."""
        return self._model

    @property
    def final_classifier(self) -> ThresholdClassifier:
        """The step-3 classifier deciding the derived similarity."""
        return self._final_classifier

    # ------------------------------------------------------------------
    # Threshold pushdown
    # ------------------------------------------------------------------

    def attribute_floors(self) -> SimilarityFloors | None:
        """The safe pushdown floors of this configuration, if any.

        Delegates to :func:`repro.matching.pushdown.derive_floors` with
        this procedure's model, ϑ and final classifier; ``None`` means
        pruning must stay off for this configuration.
        """
        return derive_floors(
            self._model, self._derivation, self._final_classifier
        )

    def with_floors(
        self, floors: SimilarityFloors
    ) -> "XTupleDecisionProcedure":
        """A clone whose attribute matching prunes below *floors*.

        Model, derivation and final classifier are shared; only the
        matcher is replaced by its floor-configured clone (see
        :meth:`AttributeMatcher.with_floors`).  Returns ``self`` when
        the floors change nothing.
        """
        matcher = self._matcher.with_floors(floors)
        if matcher is self._matcher:
            return self
        return XTupleDecisionProcedure(
            matcher,
            self._model,
            self._derivation,
            classifier=self._final_classifier,
        )

    def with_backend(self, backend) -> "XTupleDecisionProcedure":
        """A clone whose edit kernels run on a different backend.

        Model, derivation and final classifier are shared; only the
        matcher is replaced by its backend-configured clone (see
        :meth:`AttributeMatcher.with_backend`).  Backends are pinned
        bitwise to the reference DPs, so decisions are identical.
        Returns ``self`` when nothing changes (no backend-aware
        comparators, or the backend is already active).
        """
        matcher = self._matcher.with_backend(backend)
        if matcher is self._matcher:
            return self
        return XTupleDecisionProcedure(
            matcher,
            self._model,
            self._derivation,
            classifier=self._final_classifier,
        )

    # ------------------------------------------------------------------
    # Steps
    # ------------------------------------------------------------------

    def comparison_matrix(
        self, left: XTuple, right: XTuple
    ) -> ComparisonMatrix:
        """Attribute value matching for all alternative pairs."""
        return self._matcher.compare_xtuples(left, right)

    def derivation_input(
        self, matrix: ComparisonMatrix
    ) -> DerivationInput:
        """Steps 1.1 (+1.2) — similarity and status matrices plus weights.

        The conditional weights are reused from the comparison matrix
        (computed once in its constructor) instead of being re-derived
        per cell; numpy views of all matrices materialize lazily inside
        :class:`DerivationInput` the first time a vectorized derivation
        needs them.
        """
        model_similarity = self._model.similarity
        classify = (
            self._model.classifier.classify
            if self._derivation.requires_statuses
            else None
        )
        similarities: list[tuple[float, ...]] = []
        statuses: list[tuple[MatchStatus, ...]] | None = (
            [] if classify is not None else None
        )
        for vector_row in matrix.rows():
            sim_row = tuple(model_similarity(v) for v in vector_row)
            similarities.append(sim_row)
            if statuses is not None:
                statuses.append(tuple(classify(s) for s in sim_row))
        return DerivationInput(
            similarities=tuple(similarities),
            statuses=tuple(statuses) if statuses is not None else None,
            weights=matrix.weights,
        )

    def similarity(self, left: XTuple, right: XTuple) -> float:
        """sim(t1, t2) — steps 1 and 2 only."""
        matrix = self.comparison_matrix(left, right)
        return self._derivation(self.derivation_input(matrix))

    def decide(
        self,
        left: XTuple,
        right: XTuple,
        *,
        keep_derivations: bool = True,
    ) -> XTupleDecision:
        """The full Figure-6 procedure for one x-tuple pair.

        With ``keep_derivations=False`` the intermediate matrices are
        dropped from the returned record (``derivation_input`` is
        ``None``) so large batched runs don't retain every comparison
        matrix.
        """
        matrix = self.comparison_matrix(left, right)
        data = self.derivation_input(matrix)
        similarity = self._derivation(data)
        decision = self._final_classifier.decide(similarity)
        return XTupleDecision(
            left_id=left.tuple_id,
            right_id=right.tuple_id,
            decision=decision,
            derivation_input=data if keep_derivations else None,
        )

    # ------------------------------------------------------------------
    # Flat-tuple convenience (Section IV-A)
    # ------------------------------------------------------------------

    def decide_flat(
        self, left: ProbabilisticTuple, right: ProbabilisticTuple
    ) -> XTupleDecision:
        """Decide a flat tuple pair by embedding into the x-tuple model.

        Uncertainty stays on the attribute level (Equation 5 inside the
        matcher); the 1×1 matrix makes every ϑ act as the identity, so
        this is exactly the common decision model of Figure 3.
        """
        return self.decide(XTuple.from_flat(left), XTuple.from_flat(right))

    def __repr__(self) -> str:
        variant = (
            "decision-based"
            if self._derivation.requires_statuses
            else "similarity-based"
        )
        return (
            f"XTupleDecisionProcedure({variant}, ϑ={self._derivation!r}, "
            f"final={self._final_classifier!r})"
        )
