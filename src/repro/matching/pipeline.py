"""End-to-end duplicate detection: the five steps of Section III.

:class:`DuplicateDetector` wires together

(A) data preparation — optional standardization hooks
    (:mod:`repro.preparation`),
(B) search space reduction — any pair generator
    (:mod:`repro.reduction`); defaults to the full cross product,
(C) attribute value matching — :class:`AttributeMatcher`,
(D) a decision model, lifted to x-tuples through
    :class:`XTupleDecisionProcedure` (Figure 6),
(E) verification — the returned :class:`DetectionResult` feeds directly
    into :mod:`repro.verification`.

Intra-source and inter-source duplicates are both covered: detection runs
over one (possibly unioned) relation, comparing every candidate pair once.
"""

from __future__ import annotations

import itertools
import multiprocessing
from collections.abc import Callable, Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.matching.clustering import ClusteringResult, cluster_matches
from repro.matching.comparison import AttributeMatcher
from repro.matching.decision.base import DecisionModel, MatchStatus
from repro.matching.derivation import DerivationFunction
from repro.matching.engine import XTupleDecision, XTupleDecisionProcedure
from repro.pdb.relations import ProbabilisticRelation, XRelation


@runtime_checkable
class PairGenerator(Protocol):
    """Search-space reduction strategy: yields candidate tuple-id pairs."""

    def pairs(
        self, relation: XRelation
    ) -> Iterable[tuple[str, str]]:  # pragma: no cover
        ...


class FullComparison:
    """The unreduced search space: all ``n(n-1)/2`` unordered pairs."""

    def pairs(self, relation: XRelation) -> Iterable[tuple[str, str]]:
        ids = relation.tuple_ids
        for i, left in enumerate(ids):
            for right in ids[i + 1 :]:
                yield left, right

    def __repr__(self) -> str:
        return "FullComparison()"


@dataclass(frozen=True)
class DetectionResult:
    """Everything duplicate detection produced, ready for verification.

    Attributes
    ----------
    decisions:
        One :class:`XTupleDecision` per compared candidate pair.
    compared_pairs:
        The candidate pairs that were actually compared (normalized so
        ``left <= right``), i.e. the reduced search space.
    relation_size:
        Number of tuples in the searched relation (for reduction-ratio
        computations).
    """

    decisions: tuple[XTupleDecision, ...]
    compared_pairs: frozenset[tuple[str, str]]
    relation_size: int

    def pairs_with_status(
        self, status: MatchStatus
    ) -> tuple[tuple[str, str], ...]:
        """All compared pairs that received the given matching value."""
        return tuple(
            _ordered(d.left_id, d.right_id)
            for d in self.decisions
            if d.status is status
        )

    @property
    def matches(self) -> tuple[tuple[str, str], ...]:
        """The set M."""
        return self.pairs_with_status(MatchStatus.MATCH)

    @property
    def possible_matches(self) -> tuple[tuple[str, str], ...]:
        """The set P (clerical review)."""
        return self.pairs_with_status(MatchStatus.POSSIBLE)

    @property
    def unmatches(self) -> tuple[tuple[str, str], ...]:
        """The set U."""
        return self.pairs_with_status(MatchStatus.UNMATCH)

    def clusters(self, *, include_possible: bool = False) -> ClusteringResult:
        """Transitive closure of the decisions into duplicate clusters."""
        ids: set[str] = set()
        for left, right in self.compared_pairs:
            ids.add(left)
            ids.add(right)
        return cluster_matches(
            sorted(ids),
            [(d.left_id, d.right_id, d.status) for d in self.decisions],
            include_possible=include_possible,
        )


def _ordered(left: str, right: str) -> tuple[str, str]:
    return (left, right) if left <= right else (right, left)


#: Default number of candidate pairs decided per batch.  Large enough to
#: amortize dispatch overhead (and IPC when fanning out), small enough
#: that per-chunk result lists never hold more than a sliver of a run.
DEFAULT_CHUNK_SIZE = 1024

#: Worker-process state for the multiprocessing fan-out, installed by
#: :func:`_init_worker` via the fork of the parent.  Each worker gets its
#: own copy of the decision procedure — and therefore its own similarity
#: caches, which grow independently and never need synchronization.
_WORKER_STATE: dict[str, object] = {}


def _init_worker(procedure, relation, keep_derivations) -> None:
    _WORKER_STATE["procedure"] = procedure
    _WORKER_STATE["relation"] = relation
    _WORKER_STATE["keep_derivations"] = keep_derivations


def _decide_chunk(pairs: Sequence[tuple[str, str]]):
    procedure = _WORKER_STATE["procedure"]
    relation = _WORKER_STATE["relation"]
    keep = _WORKER_STATE["keep_derivations"]
    return [
        procedure.decide(
            relation.get(left), relation.get(right), keep_derivations=keep
        )
        for left, right in pairs
    ]


def _chunked(
    pairs: Iterator[tuple[str, str]], size: int
) -> Iterator[list[tuple[str, str]]]:
    while True:
        chunk = list(itertools.islice(pairs, size))
        if not chunk:
            return
        yield chunk


class DuplicateDetector:
    """Configurable five-step duplicate detection pipeline.

    Parameters
    ----------
    matcher:
        Attribute value matching configuration (step C).
    model:
        Per-alternative decision model (step D).
    derivation:
        ϑ for x-tuple pairs; default expected similarity (Equation 6).
    reducer:
        Search-space reduction (step B); default full comparison.
    preparation:
        Optional relation-level preparation hook (step A): a callable
        ``XRelation -> XRelation`` applied before anything else, e.g.
        :func:`repro.preparation.standardize_relation` partially applied.
    final_classifier:
        Optional distinct classifier for the x-tuple level (step 3 of
        Figure 6); defaults to the model's classifier.
    """

    def __init__(
        self,
        matcher: AttributeMatcher,
        model: DecisionModel,
        *,
        derivation: DerivationFunction | None = None,
        reducer: PairGenerator | None = None,
        preparation: Callable[[XRelation], XRelation] | None = None,
        final_classifier=None,
    ) -> None:
        self._procedure = XTupleDecisionProcedure(
            matcher, model, derivation, classifier=final_classifier
        )
        self._reducer: PairGenerator = (
            reducer if reducer is not None else FullComparison()
        )
        self._preparation = preparation

    @property
    def procedure(self) -> XTupleDecisionProcedure:
        """The underlying Figure-6 decision procedure."""
        return self._procedure

    @property
    def reducer(self) -> PairGenerator:
        """The configured search-space reduction strategy."""
        return self._reducer

    def detect(
        self,
        relation: XRelation | ProbabilisticRelation,
        *,
        chunk_size: int | None = None,
        n_jobs: int | None = 1,
        keep_derivations: bool = True,
    ) -> DetectionResult:
        """Run steps A–D over one relation and collect the decisions.

        Flat probabilistic relations are embedded into the x-tuple model
        first (Section IV-A as the 1-alternative special case).

        Parameters
        ----------
        chunk_size:
            Candidate pairs decided per batch (default
            :data:`DEFAULT_CHUNK_SIZE`).  Batching keeps the candidate
            stream lazy and is the unit of work shipped to workers when
            fanning out.
        n_jobs:
            Number of worker processes.  1 (default) decides everything
            in-process; ``None`` uses one worker per CPU.  Workers are
            forked, so each carries its own copy of the decision
            procedure — including private similarity caches that grow
            independently without synchronization.
        keep_derivations:
            When ``False``, decisions are returned without their
            intermediate comparison matrices (``derivation_input`` is
            ``None``), so large runs don't retain every ``k × l`` matrix.
        """
        if isinstance(relation, ProbabilisticRelation):
            relation = relation.to_x_relation()
        if self._preparation is not None:
            relation = self._preparation(relation)
        if chunk_size is None:
            chunk_size = DEFAULT_CHUNK_SIZE
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if n_jobs is None:
            n_jobs = multiprocessing.cpu_count()
        if n_jobs < 1:
            raise ValueError("n_jobs must be at least 1 (or None)")

        seen: set[tuple[str, str]] = set()

        def unique_pairs() -> Iterator[tuple[str, str]]:
            for left_id, right_id in self._reducer.pairs(relation):
                if left_id == right_id:
                    continue
                pair = _ordered(left_id, right_id)
                if pair in seen:
                    continue
                seen.add(pair)
                yield pair

        decisions: list[XTupleDecision] = []
        if n_jobs == 1:
            decide = self._procedure.decide
            get = relation.get
            for chunk in _chunked(unique_pairs(), chunk_size):
                for left_id, right_id in chunk:
                    decisions.append(
                        decide(
                            get(left_id),
                            get(right_id),
                            keep_derivations=keep_derivations,
                        )
                    )
        else:
            context = multiprocessing.get_context(
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else None
            )
            with context.Pool(
                n_jobs,
                initializer=_init_worker,
                initargs=(self._procedure, relation, keep_derivations),
            ) as pool:
                for chunk_decisions in pool.imap(
                    _decide_chunk, _chunked(unique_pairs(), chunk_size)
                ):
                    decisions.extend(chunk_decisions)
        return DetectionResult(
            decisions=tuple(decisions),
            compared_pairs=frozenset(seen),
            relation_size=len(relation),
        )

    def detect_between(
        self,
        left: XRelation | ProbabilisticRelation,
        right: XRelation | ProbabilisticRelation,
        **detect_options,
    ) -> DetectionResult:
        """Inter-source detection: union the sources, then detect.

        The paper's scenario — consolidating two autonomous probabilistic
        sources (ℛ1/ℛ2 or ℛ3/ℛ4) — reduces to detection over the union;
        intra-source duplicates are found along the way.  Keyword options
        are forwarded to :meth:`detect`.
        """
        if isinstance(left, ProbabilisticRelation):
            left = left.to_x_relation()
        if isinstance(right, ProbabilisticRelation):
            right = right.to_x_relation()
        return self.detect(left.union(right), **detect_options)

    def __repr__(self) -> str:
        return (
            f"DuplicateDetector({self._procedure!r}, "
            f"reducer={self._reducer!r})"
        )
