"""End-to-end duplicate detection: the five steps of Section III.

:class:`DuplicateDetector` wires together

(A) data preparation — optional standardization hooks
    (:mod:`repro.preparation`),
(B) search space reduction — any pair generator
    (:mod:`repro.reduction`); defaults to the full cross product,
(C) attribute value matching — :class:`AttributeMatcher`,
(D) a decision model, lifted to x-tuples through
    :class:`XTupleDecisionProcedure` (Figure 6),
(E) verification — the returned :class:`DetectionResult` feeds directly
    into :mod:`repro.verification`.

Intra-source and inter-source duplicates are both covered: detection runs
over one (possibly unioned) relation, comparing every candidate pair once.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.matching.clustering import ClusteringResult, cluster_matches
from repro.matching.comparison import AttributeMatcher
from repro.matching.decision.base import DecisionModel, MatchStatus
from repro.matching.derivation import DerivationFunction
from repro.matching.engine import XTupleDecision, XTupleDecisionProcedure
from repro.pdb.relations import ProbabilisticRelation, XRelation


@runtime_checkable
class PairGenerator(Protocol):
    """Search-space reduction strategy: yields candidate tuple-id pairs."""

    def pairs(
        self, relation: XRelation
    ) -> Iterable[tuple[str, str]]:  # pragma: no cover
        ...


class FullComparison:
    """The unreduced search space: all ``n(n-1)/2`` unordered pairs."""

    def pairs(self, relation: XRelation) -> Iterable[tuple[str, str]]:
        ids = relation.tuple_ids
        for i, left in enumerate(ids):
            for right in ids[i + 1 :]:
                yield left, right

    def __repr__(self) -> str:
        return "FullComparison()"


@dataclass(frozen=True)
class DetectionResult:
    """Everything duplicate detection produced, ready for verification.

    Attributes
    ----------
    decisions:
        One :class:`XTupleDecision` per compared candidate pair.
    compared_pairs:
        The candidate pairs that were actually compared (normalized so
        ``left <= right``), i.e. the reduced search space.
    relation_size:
        Number of tuples in the searched relation (for reduction-ratio
        computations).
    """

    decisions: tuple[XTupleDecision, ...]
    compared_pairs: frozenset[tuple[str, str]]
    relation_size: int

    def pairs_with_status(
        self, status: MatchStatus
    ) -> tuple[tuple[str, str], ...]:
        """All compared pairs that received the given matching value."""
        return tuple(
            _ordered(d.left_id, d.right_id)
            for d in self.decisions
            if d.status is status
        )

    @property
    def matches(self) -> tuple[tuple[str, str], ...]:
        """The set M."""
        return self.pairs_with_status(MatchStatus.MATCH)

    @property
    def possible_matches(self) -> tuple[tuple[str, str], ...]:
        """The set P (clerical review)."""
        return self.pairs_with_status(MatchStatus.POSSIBLE)

    @property
    def unmatches(self) -> tuple[tuple[str, str], ...]:
        """The set U."""
        return self.pairs_with_status(MatchStatus.UNMATCH)

    def clusters(self, *, include_possible: bool = False) -> ClusteringResult:
        """Transitive closure of the decisions into duplicate clusters."""
        ids: set[str] = set()
        for left, right in self.compared_pairs:
            ids.add(left)
            ids.add(right)
        return cluster_matches(
            sorted(ids),
            [(d.left_id, d.right_id, d.status) for d in self.decisions],
            include_possible=include_possible,
        )


def _ordered(left: str, right: str) -> tuple[str, str]:
    return (left, right) if left <= right else (right, left)


class DuplicateDetector:
    """Configurable five-step duplicate detection pipeline.

    Parameters
    ----------
    matcher:
        Attribute value matching configuration (step C).
    model:
        Per-alternative decision model (step D).
    derivation:
        ϑ for x-tuple pairs; default expected similarity (Equation 6).
    reducer:
        Search-space reduction (step B); default full comparison.
    preparation:
        Optional relation-level preparation hook (step A): a callable
        ``XRelation -> XRelation`` applied before anything else, e.g.
        :func:`repro.preparation.standardize_relation` partially applied.
    final_classifier:
        Optional distinct classifier for the x-tuple level (step 3 of
        Figure 6); defaults to the model's classifier.
    """

    def __init__(
        self,
        matcher: AttributeMatcher,
        model: DecisionModel,
        *,
        derivation: DerivationFunction | None = None,
        reducer: PairGenerator | None = None,
        preparation: Callable[[XRelation], XRelation] | None = None,
        final_classifier=None,
    ) -> None:
        self._procedure = XTupleDecisionProcedure(
            matcher, model, derivation, classifier=final_classifier
        )
        self._reducer: PairGenerator = (
            reducer if reducer is not None else FullComparison()
        )
        self._preparation = preparation

    @property
    def procedure(self) -> XTupleDecisionProcedure:
        """The underlying Figure-6 decision procedure."""
        return self._procedure

    @property
    def reducer(self) -> PairGenerator:
        """The configured search-space reduction strategy."""
        return self._reducer

    def detect(
        self, relation: XRelation | ProbabilisticRelation
    ) -> DetectionResult:
        """Run steps A–D over one relation and collect the decisions.

        Flat probabilistic relations are embedded into the x-tuple model
        first (Section IV-A as the 1-alternative special case).
        """
        if isinstance(relation, ProbabilisticRelation):
            relation = relation.to_x_relation()
        if self._preparation is not None:
            relation = self._preparation(relation)

        decisions: list[XTupleDecision] = []
        seen: set[tuple[str, str]] = set()
        for left_id, right_id in self._reducer.pairs(relation):
            if left_id == right_id:
                continue
            pair = _ordered(left_id, right_id)
            if pair in seen:
                continue
            seen.add(pair)
            decisions.append(
                self._procedure.decide(
                    relation.get(pair[0]), relation.get(pair[1])
                )
            )
        return DetectionResult(
            decisions=tuple(decisions),
            compared_pairs=frozenset(seen),
            relation_size=len(relation),
        )

    def detect_between(
        self,
        left: XRelation | ProbabilisticRelation,
        right: XRelation | ProbabilisticRelation,
    ) -> DetectionResult:
        """Inter-source detection: union the sources, then detect.

        The paper's scenario — consolidating two autonomous probabilistic
        sources (ℛ1/ℛ2 or ℛ3/ℛ4) — reduces to detection over the union;
        intra-source duplicates are found along the way.
        """
        if isinstance(left, ProbabilisticRelation):
            left = left.to_x_relation()
        if isinstance(right, ProbabilisticRelation):
            right = right.to_x_relation()
        return self.detect(left.union(right))

    def __repr__(self) -> str:
        return (
            f"DuplicateDetector({self._procedure!r}, "
            f"reducer={self._reducer!r})"
        )
