"""End-to-end duplicate detection: the five steps of Section III.

:class:`DuplicateDetector` wires together

(A) data preparation — optional standardization hooks
    (:mod:`repro.preparation`),
(B) search space reduction — any pair generator
    (:mod:`repro.reduction`); defaults to the full cross product,
(C) attribute value matching — :class:`AttributeMatcher`,
(D) a decision model, lifted to x-tuples through
    :class:`XTupleDecisionProcedure` (Figure 6),
(E) verification — the returned :class:`DetectionResult` feeds directly
    into :mod:`repro.verification`.

Since the executor extraction, this module is a thin *configuration
facade*: the detector resolves its configuration (reducer, decision
procedure, threshold-pushdown clones, preparation hooks) into a
:class:`~repro.reduction.plan.CandidatePlan` and an
:class:`~repro.matching.executor.ExecutionEngine`, and the engine in
:mod:`repro.matching.executor` does everything between planning and the
per-pair decision — partition scheduling, cache pre-warming, worker
fan-out, skew-aware work stealing, streaming.  Inter-source detection
(:meth:`DuplicateDetector.detect_between`) plans source pairs over a
:class:`~repro.pdb.storage.MultiSourceStore` view — two spilled stores
are consolidated without ever materializing their union.

Every mode produces exactly the decisions of the plain serial pipeline,
in the same order, for every storage backend.
"""

from __future__ import annotations

import multiprocessing
import os
from collections import OrderedDict
from collections.abc import Callable, Iterable, Iterator, Mapping, Sequence
from typing import Protocol, runtime_checkable

from repro.matching.comparison import AttributeMatcher
from repro.matching.decision.base import DecisionModel
from repro.matching.derivation import DerivationFunction
from repro.matching.engine import XTupleDecision, XTupleDecisionProcedure
from repro.matching.executor import (
    DEFAULT_CHUNK_SIZE,
    ExecutionEngine,
    ExecutionSettings,
    RetryPolicy,
    cross_source_plan,
    plan_sources,
    prune_disjoint_sources,
)
from repro.matching.executor.progress import FaultObserver, ProgressObserver
from repro.matching.executor.results import DetectionResult
from repro.matching.executor.workers import (
    chunked as _chunked,
    decide_chunk as _decide_chunk,
    fork_context as _fork_context,
    init_worker as _init_worker,
)
from repro.matching.pushdown import SimilarityFloors
from repro.similarity.backends.base import resolve_backend_name
from repro.pdb.relations import ProbabilisticRelation, XRelation
from repro.pdb.storage import XTupleStore, combine_sources
from repro.reduction.plan import (
    DEFAULT_PARTITION_PAIRS,
    CandidatePlan,
    PlanBuilder,
    ordered_pair as _ordered,
    plan_candidates,
    plan_fingerprints,
)

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "DetectionResult",
    "DuplicateDetector",
    "FullComparison",
    "PairGenerator",
]


@runtime_checkable
class PairGenerator(Protocol):
    """Search-space reduction strategy: yields candidate tuple-id pairs."""

    def pairs(
        self, relation: XRelation
    ) -> Iterable[tuple[str, str]]:  # pragma: no cover
        ...


class FullComparison:
    """The unreduced search space: all ``n(n-1)/2`` unordered pairs."""

    def pairs(self, relation: XRelation) -> Iterable[tuple[str, str]]:
        ids = relation.tuple_ids
        for i, left in enumerate(ids):
            for right in ids[i + 1 :]:
                yield left, right

    def plan(self, relation: XRelation) -> CandidatePlan:
        """Contiguous row bands with roughly equal pair counts.

        Full comparison has no block structure, so partitions exist
        purely for scheduling: row ``i`` contributes ``n - 1 - i``
        pairs, and bands grow toward the tail to keep partitions
        balanced.  Band boundaries never change the concatenated pair
        order, so results are independent of the banding.

        >>> from repro.pdb.relations import XRelation
        >>> from repro.pdb.xtuples import TupleAlternative, XTuple
        >>> relation = XRelation("R", ("name",), [
        ...     XTuple(f"t{i}", (TupleAlternative({"name": n}, 1.0),))
        ...     for i, n in enumerate(["anna", "anne", "bob"])])
        >>> plan = FullComparison().plan(relation)
        >>> [p.label for p in plan]
        ['rows[0:3]']
        >>> list(plan.pairs())
        [('t0', 't1'), ('t0', 't2'), ('t1', 't2')]
        """
        ids = relation.tuple_ids
        n = len(ids)
        builder = PlanBuilder()
        start = 0
        while start < n:
            end = start + 1
            estimated = n - 1 - start
            while end < n and estimated < DEFAULT_PARTITION_PAIRS:
                estimated += n - 1 - end
                end += 1
            builder.add(
                f"rows[{start}:{end}]", self._band_pairs(ids, start, end)
            )
            start = end
        return builder.build(relation_size=n, source=repr(self))

    @staticmethod
    def _band_pairs(
        ids: Sequence[str], start: int, end: int
    ) -> Iterator[tuple[str, str]]:
        n = len(ids)
        for i in range(start, end):
            left = ids[i]
            for j in range(i + 1, n):
                yield left, ids[j]

    def __repr__(self) -> str:
        return "FullComparison()"


def _status_counts(decisions) -> list[int]:
    """η counts ``[matches, possibles, unmatches]`` of one slice."""
    counts = [0, 0, 0]
    for decided in decisions:
        status = decided.decision.status.value
        if status == "m":
            counts[0] += 1
        elif status == "p":
            counts[1] += 1
        else:
            counts[2] += 1
    return counts


#: Soft bound on memoized pruned pipeline clones per detector.  A
#: normal workload uses one ("auto") or a handful of configurations; a
#: float-cutoff sweep past the bound evicts the least recently used
#: clone (true LRU — the hot "auto" clone of an interleaved sweep is
#: never dropped by unrelated cutoffs).
_MAX_PRUNED_PROCEDURES = 8

#: Scheduling modes ``detect`` accepts: the engine's plan-driven modes
#: plus the legacy pre-planner stripe fan-out.
SCHEDULING_MODES = ("partitioned", "stealing", "striped")


class DuplicateDetector:
    """Configurable five-step duplicate detection pipeline.

    Parameters
    ----------
    matcher:
        Attribute value matching configuration (step C).
    model:
        Per-alternative decision model (step D).
    derivation:
        ϑ for x-tuple pairs; default expected similarity (Equation 6).
    reducer:
        Search-space reduction (step B); default full comparison.
    preparation:
        Optional relation-level preparation hook (step A): a callable
        ``XRelation -> XRelation`` applied before anything else, e.g.
        :func:`repro.preparation.standardize_relation` partially applied.
        :meth:`detect_between` applies it to *each source separately*,
        before any planning — per-source standardization of autonomous
        sources.
    final_classifier:
        Optional distinct classifier for the x-tuple level (step 3 of
        Figure 6); defaults to the model's classifier.

    Attributes
    ----------
    last_report:
        The :class:`~repro.matching.executor.ExecutionReport` of the
        most recent plan-driven ``detect`` / ``detect_between`` call
        (``None`` before the first run and for striped runs).  For
        streamed runs the counters finish filling as the slice iterator
        is consumed.
    """

    def __init__(
        self,
        matcher: AttributeMatcher,
        model: DecisionModel,
        *,
        derivation: DerivationFunction | None = None,
        reducer: PairGenerator | None = None,
        preparation: Callable[[XRelation], XRelation] | None = None,
        final_classifier=None,
    ) -> None:
        self._procedure = XTupleDecisionProcedure(
            matcher, model, derivation, classifier=final_classifier
        )
        self._reducer: PairGenerator = (
            reducer if reducer is not None else FullComparison()
        )
        self._preparation = preparation
        # Pruned pipeline clones, memoized per floors signature: one
        # configuration is inverted (and its banded caches created)
        # once, however many detect calls reuse it.  Bounded by true
        # LRU eviction: a cutoff sweep over many distinct floors only
        # ever drops the least recently used clone, so the hot clone
        # (e.g. "auto") survives the sweep.
        self._pruned_procedures: OrderedDict[
            tuple, XTupleDecisionProcedure
        ] = OrderedDict()
        self.last_report = None
        self.last_manifest = None

    @property
    def procedure(self) -> XTupleDecisionProcedure:
        """The underlying Figure-6 decision procedure."""
        return self._procedure

    def attribute_floors(self) -> SimilarityFloors | None:
        """The cutoffs ``min_similarity="auto"`` would push down.

        ``None`` means this configuration cannot prune (its model
        derives no safe floors) and auto mode silently runs exact; see
        :func:`repro.matching.pushdown.derive_floors`.
        """
        return self._procedure.attribute_floors()

    def _resolve_floors(
        self, min_similarity: float | Mapping[str, float] | str | None
    ) -> SimilarityFloors | None:
        """The pushdown floors a ``min_similarity`` option resolves to.

        ``None`` means the run stays exact — either because no floors
        were requested or because the resolved floors would never
        prune.
        """
        floors: SimilarityFloors | None = None
        if min_similarity is not None:
            if isinstance(min_similarity, str):
                if min_similarity != "auto":
                    raise ValueError(
                        f"unknown min_similarity mode {min_similarity!r}; "
                        "expected 'auto', a float, a mapping, or None"
                    )
                floors = self._procedure.attribute_floors()
            elif isinstance(min_similarity, Mapping):
                floors = SimilarityFloors(dict(min_similarity))
            else:
                floors = SimilarityFloors.uniform(float(min_similarity))
            if floors is not None and floors.is_exact:
                floors = None
        return floors

    def _resolve_procedure(
        self,
        min_similarity: float | Mapping[str, float] | str | None,
        kernel_backend: str | None = None,
    ) -> XTupleDecisionProcedure:
        """The procedure a detect run should execute with.

        Resolves the ``min_similarity`` option into
        :class:`~repro.matching.pushdown.SimilarityFloors` and the
        ``kernel_backend`` selector into a registered backend name,
        derives the configured pipeline clone once per distinct
        ``(floors, backend)`` combination and reuses it afterwards
        (including its band-keyed similarity caches), evicting
        least-recently-used clones past the bound.
        """
        backend = resolve_backend_name(kernel_backend)
        floors = self._resolve_floors(min_similarity)
        key = (
            floors.signature() if floors is not None else None,
            backend,
        )
        memo = self._pruned_procedures
        procedure = memo.get(key)
        if procedure is None:
            procedure = self._procedure.with_backend(backend)
            if floors is not None:
                procedure = procedure.with_floors(floors)
            if procedure is self._procedure:
                # Nothing changed (no backend-aware comparators and no
                # floors): the base procedure needs no memo slot.
                return procedure
            while len(memo) >= _MAX_PRUNED_PROCEDURES:
                memo.popitem(last=False)
            memo[key] = procedure
        else:
            memo.move_to_end(key)
        return procedure

    @property
    def reducer(self) -> PairGenerator:
        """The configured search-space reduction strategy."""
        return self._reducer

    def plan(
        self, relation: XRelation | ProbabilisticRelation | XTupleStore
    ) -> CandidatePlan:
        """The execution plan detection would run (after preparation)."""
        relation = self._prepared_relation(relation)
        return plan_candidates(self._reducer, relation)

    def _prepared_relation(
        self, relation: XRelation | ProbabilisticRelation | XTupleStore
    ) -> XRelation | XTupleStore:
        if isinstance(relation, ProbabilisticRelation):
            relation = relation.to_x_relation()
        if self._preparation is not None:
            if not isinstance(relation, XRelation):
                # Preparation hooks rewrite whole relations; rewriting an
                # out-of-core store in place would defeat its read-only
                # worker semantics.  Prepare, then spill.
                raise TypeError(
                    "preparation hooks require an in-memory XRelation; "
                    "materialize the store, prepare, and re-spill "
                    "(store.materialize() → prepare → XRelation.spill)"
                )
            relation = self._preparation(relation)
        return relation

    def detect(
        self,
        relation: XRelation | ProbabilisticRelation | XTupleStore,
        *,
        chunk_size: int | None = None,
        n_jobs: int | None = 1,
        keep_derivations: bool = True,
        keep_compared_pairs: bool = True,
        scheduling: str = "partitioned",
        stream: bool = False,
        prewarm: bool | None = None,
        min_similarity: float | Mapping[str, float] | str | None = None,
        kernel_backend: str | None = None,
        split_pairs: int | None = None,
        split_cost_model: str | None = None,
        prewarm_budget: int | None = None,
        on_progress: ProgressObserver | None = None,
        retry: RetryPolicy | None = None,
        on_error: str = "raise",
        on_fault: FaultObserver | None = None,
        audit: str | os.PathLike | bool | None = None,
    ) -> DetectionResult | Iterator[DetectionResult]:
        """Run steps A–D over one relation and collect the decisions.

        Flat probabilistic relations are embedded into the x-tuple model
        first (Section IV-A as the 1-alternative special case).  The
        relation may be any storage backend satisfying
        :class:`~repro.pdb.storage.XTupleStore` — in particular an
        out-of-core :class:`~repro.pdb.storage.SpillingXTupleStore`
        opened via :func:`repro.pdb.io.open_store`, in which case only
        one chunk-sized working set (plus the store's page cache) is
        ever decoded at a time and results are identical bit for bit to
        the in-memory run.

        >>> from repro.pdb.relations import XRelation
        >>> from repro.pdb.xtuples import TupleAlternative, XTuple
        >>> from repro.matching import (AttributeMatcher,
        ...     FellegiSunterModel, ThresholdClassifier)
        >>> from repro.similarity import (FAST_LEVENSHTEIN,
        ...     UncertainValueComparator)
        >>> relation = XRelation("people", ("name", "job"), [
        ...     XTuple(t, (TupleAlternative({"name": n, "job": j}, 1.0),))
        ...     for t, n, j in [("t1", "meier", "baker"),
        ...                     ("t2", "meyer", "baker"),
        ...                     ("t3", "smith", "clerk")]])
        >>> detector = DuplicateDetector(
        ...     AttributeMatcher({
        ...         "name": UncertainValueComparator(
        ...             FAST_LEVENSHTEIN, cache=True),
        ...         "job": UncertainValueComparator(
        ...             FAST_LEVENSHTEIN, cache=True)}),
        ...     FellegiSunterModel(
        ...         {"name": 0.9, "job": 0.6}, {"name": 0.05, "job": 0.2},
        ...         ThresholdClassifier(10.0, 1.0),
        ...         agreement_threshold=0.8),
        ... )
        >>> detector.detect(relation).matches
        (('t1', 't2'),)
        >>> # Threshold pushdown: identical decisions, pruned kernels.
        >>> detector.detect(relation, min_similarity="auto").matches
        (('t1', 't2'),)

        Parameters
        ----------
        chunk_size:
            Candidate pairs per worker dispatch (default
            :data:`~repro.matching.executor.DEFAULT_CHUNK_SIZE`).
            Under plan-driven scheduling, partitions larger than this
            are split into contiguous sub-chunks; chunk boundaries
            never cross partitions.
        n_jobs:
            Number of worker processes.  1 (default) decides everything
            in-process; ``None`` uses one worker per CPU.  Workers are
            forked and receive *whole partitions* (or, under stealing,
            whole work units), so each worker's similarity-cache
            working set covers one block neighborhood.  Storage
            backends are opened read-only by workers: a forked worker
            re-opens a spilled store's segment files for itself and
            never copies the relation.
        keep_derivations:
            When ``False``, decisions are returned without their
            intermediate comparison matrices (``derivation_input`` is
            ``None``), so large runs don't retain every ``k × l`` matrix.
        keep_compared_pairs:
            When ``False``, the result's ``compared_pairs`` is empty, so
            streaming large runs never accumulates a set of every pair
            id.  Decisions are unaffected.
        scheduling:
            ``"partitioned"`` (default) plans the reducer's block/window
            structure and schedules whole partitions in plan order;
            ``"stealing"`` additionally subdivides partitions exceeding
            the ``split_pairs`` cost budget (via the reducer's sub-key
            ``split_partition`` hook, else contiguous banding) and
            dispatches the work units largest-first through a
            work-stealing queue — one skewed block no longer serializes
            a parallel run, and results are reassembled into plan order
            so decisions stay bitwise identical;  ``"striped"`` is the
            legacy mode striping anonymous chunks of the flat pair
            stream across workers (kept for comparison and for reducers
            whose plan should be bypassed).
        stream:
            With ``True`` (plan-driven scheduling only), returns a lazy
            iterator of per-partition :class:`DetectionResult` slices
            instead of one collected result — decisions for a partition
            are released to the caller as soon as it is decided, so a
            run over a huge relation never materializes all decisions.
        prewarm:
            Whether to pre-warm the matcher's similarity caches from the
            plan's per-partition vocabulary before executing.  Default
            (``None``) warms exactly when forking under partitioned
            scheduling (when the warm table is complete the caches are
            frozen read-only for the pool's lifetime so every worker
            shares the parent's table copy-on-write); stealing defaults
            to *no* parent-side warming — its sub-key work units keep
            worker working sets coherent, so warming would serialize
            similarity work the workers compute in parallel.  Ignored
            under striped scheduling.
        min_similarity:
            Threshold pushdown.  ``"auto"`` derives per-attribute
            cutoffs from the decision model's classifier structure
            (:func:`repro.matching.pushdown.derive_floors`) and runs
            attribute matching through the cutoff-banded kernels —
            provably bitwise-equal decisions at a fraction of the
            comparison cost; configurations that cannot prove a safe
            cutoff silently run exact (inspect
            :meth:`attribute_floors`).  A float applies one uniform
            floor, a mapping per-attribute floors — both are
            *assertions* by the caller that similarities below the
            floor cannot change any decision; unlike ``"auto"`` they
            are not validated against the model.  ``None`` (default)
            computes every similarity exactly.  Cache pre-warming
            under pushdown fills the band-keyed cutoff caches instead
            of the exact tables.
        kernel_backend:
            Which comparison-kernel implementation family scores
            attribute similarities: ``"python"`` (the reference banded
            DPs), ``"bitparallel"`` (Myers bit-parallel automatons), or
            ``"numpy"`` (bit-parallel per pair plus a vectorized batch
            scorer for cache pre-warming).  ``None``/``"auto"``
            (default) picks the fastest available backend —
            ``REPRO_KERNEL_BACKEND`` overrides, then numpy when
            importable, then bitparallel.  Every backend is pinned
            bitwise to the reference DPs
            (:mod:`repro.similarity.backends`), so this is purely a
            performance knob; it composes with ``min_similarity``
            (cutoff-banded kernels exist per backend) and only affects
            backend-aware comparators such as
            :data:`~repro.similarity.FAST_LEVENSHTEIN`.
        split_pairs:
            Stealing-mode cost budget: partitions above this many pairs
            are subdivided (default
            :data:`~repro.matching.executor.DEFAULT_SPLIT_PAIRS`).
        split_cost_model:
            How the stealing scheduler costs work units: ``"pairs"``
            (default) by candidate-pair count alone, ``"weighted"`` by
            pairs scaled with sampled alternative counts and string
            lengths, so fat-tuple partitions split earlier and dispatch
            first.  Scheduling-only — decisions are bitwise identical
            under either model.
        prewarm_budget:
            Parent-side warm budget in pairwise similarity evaluations
            (default
            :data:`~repro.matching.executor.PREWARM_PAIR_BUDGET`).
            When one partition's vocabulary table exceeds what remains,
            warming stops incomplete and the caches are not frozen —
            the skewed-block regime where ``scheduling="stealing"``
            takes over.
        on_progress:
            Optional callback invoked once per completed partition with
            a :class:`~repro.matching.executor.PartitionProgress`
            event; the run's summary is available afterwards as
            :attr:`last_report`.
        retry:
            Fault-tolerance budget, a
            :class:`~repro.matching.executor.RetryPolicy`: failed or
            timed-out worker dispatches are retried up to
            ``max_attempts`` (with exponential ``backoff``), each
            dispatch bounded by ``timeout`` seconds.  The default
            policy (one attempt, no deadline) together with
            ``on_error="raise"`` keeps the zero-overhead unsupervised
            execution paths, where worker errors propagate raw exactly
            as before.  Plan-driven scheduling only.
        on_error:
            What happens to a work unit that exhausts the retry
            budget: ``"raise"`` (default) aborts the run with a
            :class:`~repro.matching.executor.PartitionFailure`;
            ``"degrade"`` re-executes the unit in-process — work units
            are pure, so a degraded run's decisions stay bitwise
            identical, merely slower; ``"skip"`` drops the unit's
            partitions and records one
            :class:`~repro.matching.executor.PartitionFailure` per
            partition in ``last_report.failures`` (partial results for
            consolidation workloads that prefer serving healthy
            partitions).  Every recovery is counted in
            :attr:`last_report` — silent degradation is impossible.
        on_fault:
            Optional callback invoked on every retry, degradation and
            terminal failure with a
            :class:`~repro.matching.executor.FaultEvent`.
        audit:
            Build an :class:`~repro.audit.AuditManifest` for the run —
            calibration fingerprints, resolved thresholds/floors, plan
            fingerprints and per-partition η counts, canonicalized so
            any execution variant of the same inputs (n_jobs, spilled
            storage, kernel backend) fingerprints byte-identically.
            ``True`` records it as :attr:`last_manifest` only; a path
            additionally writes the manifest JSON (with a tamper-
            evident self-digest) to that file.  Requires a collected
            plan-driven run (not ``stream=True``, not
            ``scheduling="striped"``).
        """
        relation = self._prepared_relation(relation)
        return self._detect_prepared(
            relation,
            plan=None,
            chunk_size=chunk_size,
            n_jobs=n_jobs,
            keep_derivations=keep_derivations,
            keep_compared_pairs=keep_compared_pairs,
            scheduling=scheduling,
            stream=stream,
            prewarm=prewarm,
            min_similarity=min_similarity,
            kernel_backend=kernel_backend,
            split_pairs=split_pairs,
            split_cost_model=split_cost_model,
            prewarm_budget=prewarm_budget,
            on_progress=on_progress,
            retry=retry,
            on_error=on_error,
            on_fault=on_fault,
            audit=audit,
        )

    def session(
        self,
        relation: XRelation | ProbabilisticRelation | XTupleStore,
        *,
        journal=None,
        min_similarity: float | Mapping[str, float] | str | None = None,
        kernel_backend: str | None = None,
        **session_options,
    ):
        """Open an incremental detection session over *relation*.

        The session (:class:`~repro.service.DetectionSession`) overlays
        the prepared relation with a mutable delta view, keeps plan
        fingerprints, per-partition decisions and similarity caches
        alive between calls, and re-executes only the partitions each
        ingested batch touches.  The procedure is resolved exactly as
        :meth:`detect` would (floors, kernel backend), so the session's
        first result is bitwise-identical to a one-shot ``detect`` over
        the same input, and every refresh stays bitwise-identical to a
        from-scratch detection over the base with all deltas applied.

        ``journal`` names a session directory (or an opened
        :class:`~repro.pdb.storage.SessionJournal`) for durable
        sessions: ingests append to the journal, and a restart replays
        it and restores the snapshot's caches and fingerprint index.
        Remaining keyword options are those of :meth:`detect` that a
        plan-driven run accepts (``n_jobs``, ``scheduling``,
        ``keep_derivations``, ``retry`` …), plus ``within_sources``.
        """
        from repro.service.session import DetectionSession

        backend = resolve_backend_name(kernel_backend)
        procedure = self._resolve_procedure(min_similarity, backend)
        prepared = self._prepared_relation(relation)
        return DetectionSession(
            procedure,
            self._reducer,
            prepared,
            journal=journal,
            kernel_backend=backend,
            floors=self._resolve_floors(min_similarity),
            **session_options,
        )

    def detect_between(
        self,
        left: XRelation | ProbabilisticRelation | XTupleStore,
        right: XRelation | ProbabilisticRelation | XTupleStore,
        *more: XRelation | ProbabilisticRelation | XTupleStore,
        within_sources: bool = True,
        **detect_options,
    ) -> DetectionResult | Iterator[DetectionResult]:
        """Inter-source detection without materializing the union.

        The paper's scenario — consolidating autonomous probabilistic
        sources (ℛ1/ℛ2 or ℛ3/ℛ4) — is planned over a
        :class:`~repro.pdb.storage.MultiSourceStore` *view* of the
        sources: iteration order equals the union's, so decisions are
        bitwise identical to ``detect(left.union(right))``, but no
        combined relation is ever built — two (or more) out-of-core
        :class:`~repro.pdb.storage.SpillingXTupleStore` sources are
        consolidated through multi-store working-set fetches.  Every
        partition of the plan is tagged with the sources it touches.

        With ``within_sources=False`` only *cross-source* pairs are
        decided (which records of one source duplicate records of
        another): partitions whose key range exists in a single source
        are pruned from the plan without touching their tuples, and the
        remaining decisions equal the union run's decisions filtered to
        cross-source pairs, in the same order.

        A configured ``preparation`` hook is applied to *each source
        separately, before planning* — per-source standardization —
        and requires in-memory sources (materialize stores first).
        Keyword options are forwarded to :meth:`detect`.
        """
        sources = [self._prepare_source(s) for s in (left, right, *more)]
        view = combine_sources(sources)
        if detect_options.get("scheduling") == "striped":
            if not within_sources:
                raise ValueError(
                    "within_sources=False needs a plan-driven scheduling "
                    "mode; striped execution cannot prune source pairs"
                )
            # Striped execution regenerates the flat pair stream itself;
            # building (and discarding) the partitioned plan here would
            # double the planning cost for nothing.
            return self._detect_prepared(view, plan=None, **detect_options)
        if not within_sources:
            # Zone-map pruning (Section V's search-space reduction across
            # sources): statistics prove some sources share no block key
            # with any other, so those sources are dropped *before*
            # planning — their tuples are never scanned or fetched.  The
            # surviving cross plan is identical: pruned sources could
            # only have formed single-source partitions, which the cross
            # filter removes anyway.
            view, _pruned = prune_disjoint_sources(view, self._reducer)
        plan = plan_sources(self._reducer, view)
        if not within_sources:
            plan = cross_source_plan(plan, view)
        return self._detect_prepared(view, plan=plan, **detect_options)

    def _prepare_source(
        self, source: XRelation | ProbabilisticRelation | XTupleStore
    ) -> XRelation | XTupleStore:
        """Step A for one autonomous source of ``detect_between``."""
        if isinstance(source, ProbabilisticRelation):
            source = source.to_x_relation()
        if self._preparation is not None:
            if not isinstance(source, XRelation):
                raise TypeError(
                    "preparation hooks require in-memory sources; "
                    "materialize each store, prepare, and re-spill "
                    "(store.materialize() → prepare → XRelation.spill) "
                    "before detect_between"
                )
            source = self._preparation(source)
        return source

    # ------------------------------------------------------------------
    # Execution (delegated to repro.matching.executor)
    # ------------------------------------------------------------------

    def _detect_prepared(
        self,
        relation: XRelation | XTupleStore,
        *,
        plan: CandidatePlan | None,
        chunk_size: int | None = None,
        n_jobs: int | None = 1,
        keep_derivations: bool = True,
        keep_compared_pairs: bool = True,
        scheduling: str = "partitioned",
        stream: bool = False,
        prewarm: bool | None = None,
        min_similarity: float | Mapping[str, float] | str | None = None,
        kernel_backend: str | None = None,
        split_pairs: int | None = None,
        split_cost_model: str | None = None,
        prewarm_budget: int | None = None,
        on_progress: ProgressObserver | None = None,
        retry: RetryPolicy | None = None,
        on_error: str = "raise",
        on_fault: FaultObserver | None = None,
        audit: str | os.PathLike | bool | None = None,
    ) -> DetectionResult | Iterator[DetectionResult]:
        backend = resolve_backend_name(kernel_backend)
        procedure = self._resolve_procedure(min_similarity, backend)
        if audit and (stream or scheduling == "striped"):
            raise ValueError(
                "audit manifests require a collected plan-driven run "
                "(stream=False, scheduling='partitioned' or 'stealing')"
            )
        if chunk_size is None:
            chunk_size = DEFAULT_CHUNK_SIZE
        if n_jobs is None:
            n_jobs = multiprocessing.cpu_count()
        if scheduling not in SCHEDULING_MODES:
            raise ValueError(
                f"unknown scheduling {scheduling!r}; "
                f"expected one of {SCHEDULING_MODES}"
            )
        if stream and scheduling == "striped":
            raise ValueError(
                "stream=True requires plan-driven scheduling "
                "(partitioned or stealing)"
            )

        if scheduling == "striped":
            if chunk_size <= 0:
                raise ValueError("chunk_size must be positive")
            if n_jobs < 1:
                raise ValueError("n_jobs must be at least 1 (or None)")
            if (retry is not None and retry.supervises) or on_error != "raise":
                raise ValueError(
                    "retry/on_error supervision requires plan-driven "
                    "scheduling (partitioned or stealing); striped "
                    "execution has no partitions to attribute faults to"
                )
            result = self._detect_striped(
                relation,
                procedure,
                chunk_size=chunk_size,
                n_jobs=n_jobs,
                keep_derivations=keep_derivations,
                keep_compared_pairs=keep_compared_pairs,
            )
            # Striped runs have no report; clear only after success so a
            # raising run never destroys the previous run's counters.
            self.last_report = None
            return result

        settings_options = dict(
            chunk_size=chunk_size,
            n_jobs=n_jobs,
            keep_derivations=keep_derivations,
            keep_compared_pairs=keep_compared_pairs,
            scheduling=scheduling,
            prewarm=prewarm,
            kernel_backend=backend,
            on_error=on_error,
        )
        if retry is not None:
            settings_options["retry"] = retry
        if split_pairs is not None:
            settings_options["split_pairs"] = split_pairs
        if split_cost_model is not None:
            settings_options["split_cost_model"] = split_cost_model
        if prewarm_budget is not None:
            settings_options["prewarm_budget"] = prewarm_budget
        engine = ExecutionEngine(
            procedure,
            ExecutionSettings(**settings_options),
            splitter=self._reducer,
            observer=on_progress,
            fault_observer=on_fault,
        )
        self.last_report = engine.report
        if plan is None:
            plan = plan_candidates(self._reducer, relation)
        slices = engine.execute(relation, plan)
        if stream:
            return slices
        decisions: list[XTupleDecision] = []
        compared: set[tuple[str, str]] = set()
        partition_counts: dict[str, list[int]] = {}
        for piece in slices:
            decisions.extend(piece.decisions)
            if keep_compared_pairs:
                compared.update(piece.compared_pairs)
            if audit:
                partition_counts[piece.partition_label] = (
                    _status_counts(piece.decisions)
                )
        if audit:
            self.last_manifest = self._build_manifest(
                relation,
                plan,
                procedure,
                partition_counts,
                floors=self._resolve_floors(min_similarity),
                backend=backend,
                audit=audit,
            )
        return DetectionResult(
            decisions=tuple(decisions),
            compared_pairs=frozenset(compared),
            relation_size=len(relation),
        )

    def _build_manifest(
        self,
        relation,
        plan: CandidatePlan,
        procedure: XTupleDecisionProcedure,
        partition_counts: Mapping[str, Sequence[int]],
        *,
        floors: SimilarityFloors | None,
        backend: str,
        audit: str | os.PathLike | bool,
    ):
        """Assemble (and possibly write) the run's audit manifest."""
        from repro.audit import build_manifest

        report = self.last_report
        manifest = build_manifest(
            procedure=procedure,
            plan_fingerprints=plan_fingerprints(relation, plan),
            partition_counts=partition_counts,
            floors=floors,
            failures=tuple(
                failure.partition for failure in report.failures
            ),
            environment={
                "n_jobs": report.n_jobs,
                "scheduling": report.scheduling,
                "kernel_backend": backend,
                "storage": type(relation).__name__,
                "model": type(procedure.model).__name__,
            },
        )
        if not isinstance(audit, bool):
            manifest.write(audit)
        return manifest

    # ------------------------------------------------------------------
    # Striped execution (legacy fan-out, pre-planner)
    # ------------------------------------------------------------------

    def _detect_striped(
        self,
        relation: XRelation | XTupleStore,
        procedure: XTupleDecisionProcedure,
        *,
        chunk_size: int,
        n_jobs: int,
        keep_derivations: bool,
        keep_compared_pairs: bool,
    ) -> DetectionResult:
        seen: set[tuple[str, str]] = set()

        def unique_pairs() -> Iterator[tuple[str, str]]:
            for left_id, right_id in self._reducer.pairs(relation):
                if left_id == right_id:
                    continue
                pair = _ordered(left_id, right_id)
                if pair in seen:
                    continue
                seen.add(pair)
                yield pair

        decisions: list[XTupleDecision] = []
        if n_jobs == 1:
            decide = procedure.decide
            get = relation.get
            for chunk in _chunked(unique_pairs(), chunk_size):
                for left_id, right_id in chunk:
                    decisions.append(
                        decide(
                            get(left_id),
                            get(right_id),
                            keep_derivations=keep_derivations,
                        )
                    )
        else:
            with _fork_context().Pool(
                n_jobs,
                initializer=_init_worker,
                initargs=(procedure, relation, keep_derivations),
            ) as pool:
                for chunk_decisions in pool.imap(
                    _decide_chunk, _chunked(unique_pairs(), chunk_size)
                ):
                    decisions.extend(chunk_decisions)
        return DetectionResult(
            decisions=tuple(decisions),
            compared_pairs=(
                frozenset(seen) if keep_compared_pairs else frozenset()
            ),
            relation_size=len(relation),
        )

    def __repr__(self) -> str:
        return (
            f"DuplicateDetector({self._procedure!r}, "
            f"reducer={self._reducer!r})"
        )
