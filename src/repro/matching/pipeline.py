"""End-to-end duplicate detection: the five steps of Section III.

:class:`DuplicateDetector` wires together

(A) data preparation — optional standardization hooks
    (:mod:`repro.preparation`),
(B) search space reduction — any pair generator
    (:mod:`repro.reduction`); defaults to the full cross product,
(C) attribute value matching — :class:`AttributeMatcher`,
(D) a decision model, lifted to x-tuples through
    :class:`XTupleDecisionProcedure` (Figure 6),
(E) verification — the returned :class:`DetectionResult` feeds directly
    into :mod:`repro.verification`.

Intra-source and inter-source duplicates are both covered: detection runs
over one (possibly unioned) relation, comparing every candidate pair once.

Execution happens in three stages since the block-aware planner landed:

1. **plan** — the reducer's block/window structure is materialized as a
   :class:`~repro.reduction.plan.CandidatePlan` (legacy ``pairs()``-only
   reducers fall back to one partition); partitions carry tuple *ids*,
   never tuples;
2. **schedule** — whole partitions are assigned to workers, so each
   worker's similarity-cache working set covers one block neighborhood
   instead of a blind stripe of the pair stream; before forking, the
   shared caches are pre-warmed from the observed per-partition
   vocabulary and frozen read-only;
3. **execute** — partitions are decided in plan order, either collected
   into one :class:`DetectionResult` or streamed per partition
   (``stream=True``).  Member tuples are loaded chunk by chunk as
   bounded working sets through the storage backend
   (:func:`repro.pdb.storage.fetch_tuples`), so detection over an
   out-of-core :class:`~repro.pdb.storage.SpillingXTupleStore` keeps
   only the current chunk's tuples plus the store's page cache decoded
   — even for single-partition plans — and forked workers open the
   store read-only, never duplicating the relation.

Every mode produces exactly the decisions of the plain serial pipeline,
in the same order, for every storage backend.
"""

from __future__ import annotations

import itertools
import multiprocessing
from collections.abc import Callable, Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.matching.clustering import ClusteringResult, cluster_matches
from repro.matching.comparison import AttributeMatcher
from repro.matching.decision.base import DecisionModel, MatchStatus
from repro.matching.derivation import DerivationFunction
from repro.matching.engine import XTupleDecision, XTupleDecisionProcedure
from repro.matching.pushdown import SimilarityFloors
from repro.pdb.relations import ProbabilisticRelation, XRelation
from repro.pdb.storage import XTupleStore, fetch_tuples
from repro.reduction.plan import (
    DEFAULT_PARTITION_PAIRS,
    CandidatePartition,
    CandidatePlan,
    PlanBuilder,
    ordered_pair as _ordered,
    partition_vocabulary,
    plan_candidates,
)


@runtime_checkable
class PairGenerator(Protocol):
    """Search-space reduction strategy: yields candidate tuple-id pairs."""

    def pairs(
        self, relation: XRelation
    ) -> Iterable[tuple[str, str]]:  # pragma: no cover
        ...


class FullComparison:
    """The unreduced search space: all ``n(n-1)/2`` unordered pairs."""

    def pairs(self, relation: XRelation) -> Iterable[tuple[str, str]]:
        ids = relation.tuple_ids
        for i, left in enumerate(ids):
            for right in ids[i + 1 :]:
                yield left, right

    def plan(self, relation: XRelation) -> CandidatePlan:
        """Contiguous row bands with roughly equal pair counts.

        Full comparison has no block structure, so partitions exist
        purely for scheduling: row ``i`` contributes ``n - 1 - i``
        pairs, and bands grow toward the tail to keep partitions
        balanced.  Band boundaries never change the concatenated pair
        order, so results are independent of the banding.

        >>> from repro.pdb.relations import XRelation
        >>> from repro.pdb.xtuples import TupleAlternative, XTuple
        >>> relation = XRelation("R", ("name",), [
        ...     XTuple(f"t{i}", (TupleAlternative({"name": n}, 1.0),))
        ...     for i, n in enumerate(["anna", "anne", "bob"])])
        >>> plan = FullComparison().plan(relation)
        >>> [p.label for p in plan]
        ['rows[0:3]']
        >>> list(plan.pairs())
        [('t0', 't1'), ('t0', 't2'), ('t1', 't2')]
        """
        ids = relation.tuple_ids
        n = len(ids)
        builder = PlanBuilder()
        start = 0
        while start < n:
            end = start + 1
            estimated = n - 1 - start
            while end < n and estimated < DEFAULT_PARTITION_PAIRS:
                estimated += n - 1 - end
                end += 1
            builder.add(
                f"rows[{start}:{end}]", self._band_pairs(ids, start, end)
            )
            start = end
        return builder.build(relation_size=n, source=repr(self))

    @staticmethod
    def _band_pairs(
        ids: Sequence[str], start: int, end: int
    ) -> Iterator[tuple[str, str]]:
        n = len(ids)
        for i in range(start, end):
            left = ids[i]
            for j in range(i + 1, n):
                yield left, ids[j]

    def __repr__(self) -> str:
        return "FullComparison()"


@dataclass(frozen=True)
class DetectionResult:
    """Everything duplicate detection produced, ready for verification.

    Attributes
    ----------
    decisions:
        One :class:`XTupleDecision` per compared candidate pair.
    compared_pairs:
        The candidate pairs that were actually compared (normalized so
        ``left <= right``), i.e. the reduced search space.  Empty when
        detection ran with ``keep_compared_pairs=False``.
    relation_size:
        Number of tuples in the searched relation (for reduction-ratio
        computations).
    partition_label:
        For per-partition slices yielded by ``stream=True``: the label
        of the :class:`~repro.reduction.plan.CandidatePartition` this
        slice covers.  ``None`` for whole-run results.
    """

    decisions: tuple[XTupleDecision, ...]
    compared_pairs: frozenset[tuple[str, str]]
    relation_size: int
    partition_label: str | None = None

    def pairs_with_status(
        self, status: MatchStatus
    ) -> tuple[tuple[str, str], ...]:
        """All compared pairs that received the given matching value."""
        return tuple(
            _ordered(d.left_id, d.right_id)
            for d in self.decisions
            if d.status is status
        )

    @property
    def matches(self) -> tuple[tuple[str, str], ...]:
        """The set M."""
        return self.pairs_with_status(MatchStatus.MATCH)

    @property
    def possible_matches(self) -> tuple[tuple[str, str], ...]:
        """The set P (clerical review)."""
        return self.pairs_with_status(MatchStatus.POSSIBLE)

    @property
    def unmatches(self) -> tuple[tuple[str, str], ...]:
        """The set U."""
        return self.pairs_with_status(MatchStatus.UNMATCH)

    def clusters(self, *, include_possible: bool = False) -> ClusteringResult:
        """Transitive closure of the decisions into duplicate clusters.

        Falls back to the decisions' own pair set when
        ``compared_pairs`` was dropped (``keep_compared_pairs=False``).
        """
        ids: set[str] = set()
        for left, right in self.compared_pairs:
            ids.add(left)
            ids.add(right)
        for decision in self.decisions:
            ids.add(decision.left_id)
            ids.add(decision.right_id)
        return cluster_matches(
            sorted(ids),
            [(d.left_id, d.right_id, d.status) for d in self.decisions],
            include_possible=include_possible,
        )


#: Default number of candidate pairs decided per batch.  Large enough to
#: amortize dispatch overhead (and IPC when fanning out), small enough
#: that per-chunk result lists never hold more than a sliver of a run.
DEFAULT_CHUNK_SIZE = 1024

#: Soft bound on memoized pruned pipeline clones per detector.  A
#: normal workload uses one ("auto") or a handful of configurations;
#: a float-cutoff sweep past the bound clears the memo wholesale (the
#: repo-wide cache policy) rather than retaining every clone and its
#: banded similarity caches for the detector's lifetime.
_MAX_PRUNED_PROCEDURES = 8

#: Total pairwise-similarity budget for cache pre-warming, across all
#: partitions and attributes of one detection run.  Blocking plans warm
#: completely well below this; the bound exists so an unstructured plan
#: (full comparison) cannot spend the whole run warming in the parent.
PREWARM_PAIR_BUDGET = 200_000

#: Worker-process state for the multiprocessing fan-out, installed by
#: :func:`_init_worker` via the fork of the parent.  Each worker gets its
#: own copy of the decision procedure — and therefore its own similarity
#: caches.  Under partitioned scheduling those caches arrive pre-warmed
#: and frozen (read-only, shared copy-on-write); under striped
#: scheduling they grow independently per worker.
_WORKER_STATE: dict[str, object] = {}


def _init_worker(procedure, relation, keep_derivations) -> None:
    _WORKER_STATE["procedure"] = procedure
    _WORKER_STATE["relation"] = relation
    _WORKER_STATE["keep_derivations"] = keep_derivations


def _chunk_working_set(relation, pairs: Sequence[tuple[str, str]]):
    """The tuples one chunk of pairs touches, loaded as one batch.

    One batched working-set load per chunk: out-of-core stores decode
    each needed segment page once instead of per pair lookup, and the
    caller only ever holds this chunk's tuples (plus the store's page
    cache) decoded — never a whole single-partition plan's relation.
    """
    members: dict[str, None] = {}
    for left, right in pairs:
        members[left] = None
        members[right] = None
    return fetch_tuples(relation, members)


def _decide_chunk(pairs: Sequence[tuple[str, str]]):
    procedure = _WORKER_STATE["procedure"]
    relation = _WORKER_STATE["relation"]
    keep = _WORKER_STATE["keep_derivations"]
    working_set = _chunk_working_set(relation, pairs)
    return [
        procedure.decide(
            working_set[left], working_set[right], keep_derivations=keep
        )
        for left, right in pairs
    ]


def _decide_batch(batch):
    """Decide one dispatch batch of ``(partition index, pairs)`` chunks.

    Small partitions are coalesced into one batch so worker round trips
    cost the same as the striped fan-out; the per-chunk result lists keep
    the partition attribution for the parent's regrouping.
    """
    return [(index, _decide_chunk(pairs)) for index, pairs in batch]


def _chunked(
    pairs: Iterator[tuple[str, str]], size: int
) -> Iterator[list[tuple[str, str]]]:
    while True:
        chunk = list(itertools.islice(pairs, size))
        if not chunk:
            return
        yield chunk


def _prewarm_plan(
    matcher: AttributeMatcher,
    relation: XRelation | XTupleStore,
    plan: CandidatePlan,
    *,
    budget: int = PREWARM_PAIR_BUDGET,
) -> tuple[int, bool]:
    """Warm the matcher's caches from every partition's vocabulary.

    Returns ``(entries stored, complete)`` where *complete* means every
    partition's full pairwise table fit the budget — the precondition
    for freezing the caches read-only around a fork.
    """
    if not matcher.cache_stats():
        return 0, False
    total_warmed = 0
    complete = True
    remaining = budget
    for partition in plan:
        if remaining <= 0:
            complete = False
            break
        vocabulary = partition_vocabulary(relation, partition)
        warmed, examined, partition_complete = matcher.warm(
            vocabulary, budget=remaining
        )
        total_warmed += warmed
        remaining -= max(examined, 1)
        complete = complete and partition_complete
    return total_warmed, complete


def _slice_result(
    partition: CandidatePartition,
    decisions: tuple[XTupleDecision, ...],
    relation_size: int,
    keep_compared_pairs: bool,
) -> DetectionResult:
    return DetectionResult(
        decisions=decisions,
        compared_pairs=(
            frozenset(partition.pairs)
            if keep_compared_pairs
            else frozenset()
        ),
        relation_size=relation_size,
        partition_label=partition.label,
    )


class DuplicateDetector:
    """Configurable five-step duplicate detection pipeline.

    Parameters
    ----------
    matcher:
        Attribute value matching configuration (step C).
    model:
        Per-alternative decision model (step D).
    derivation:
        ϑ for x-tuple pairs; default expected similarity (Equation 6).
    reducer:
        Search-space reduction (step B); default full comparison.
    preparation:
        Optional relation-level preparation hook (step A): a callable
        ``XRelation -> XRelation`` applied before anything else, e.g.
        :func:`repro.preparation.standardize_relation` partially applied.
    final_classifier:
        Optional distinct classifier for the x-tuple level (step 3 of
        Figure 6); defaults to the model's classifier.
    """

    def __init__(
        self,
        matcher: AttributeMatcher,
        model: DecisionModel,
        *,
        derivation: DerivationFunction | None = None,
        reducer: PairGenerator | None = None,
        preparation: Callable[[XRelation], XRelation] | None = None,
        final_classifier=None,
    ) -> None:
        self._procedure = XTupleDecisionProcedure(
            matcher, model, derivation, classifier=final_classifier
        )
        self._reducer: PairGenerator = (
            reducer if reducer is not None else FullComparison()
        )
        self._preparation = preparation
        # Pruned pipeline clones, memoized per floors signature: one
        # configuration is inverted (and its banded caches created)
        # once, however many detect calls reuse it.  Bounded: a cutoff
        # sweep over many distinct floors clears the memo wholesale
        # instead of retaining one clone (plus banded caches) per
        # floor ever tried.
        self._pruned_procedures: dict[tuple, XTupleDecisionProcedure] = {}

    @property
    def procedure(self) -> XTupleDecisionProcedure:
        """The underlying Figure-6 decision procedure."""
        return self._procedure

    def attribute_floors(self) -> SimilarityFloors | None:
        """The cutoffs ``min_similarity="auto"`` would push down.

        ``None`` means this configuration cannot prune (its model
        derives no safe floors) and auto mode silently runs exact; see
        :func:`repro.matching.pushdown.derive_floors`.
        """
        return self._procedure.attribute_floors()

    def _resolve_procedure(
        self,
        min_similarity: float | Mapping[str, float] | str | None,
    ) -> XTupleDecisionProcedure:
        """The procedure a detect run should execute with.

        Resolves the ``min_similarity`` option into
        :class:`~repro.matching.pushdown.SimilarityFloors`, derives the
        floor-configured pipeline clone once per distinct configuration
        and reuses it afterwards (including its band-keyed similarity
        caches).
        """
        if min_similarity is None:
            return self._procedure
        if isinstance(min_similarity, str):
            if min_similarity != "auto":
                raise ValueError(
                    f"unknown min_similarity mode {min_similarity!r}; "
                    "expected 'auto', a float, a mapping, or None"
                )
            floors = self._procedure.attribute_floors()
            if floors is None:
                return self._procedure
        elif isinstance(min_similarity, Mapping):
            floors = SimilarityFloors(dict(min_similarity))
        else:
            floors = SimilarityFloors.uniform(float(min_similarity))
        if floors.is_exact:
            return self._procedure
        key = floors.signature()
        procedure = self._pruned_procedures.get(key)
        if procedure is None:
            procedure = self._procedure.with_floors(floors)
            if len(self._pruned_procedures) >= _MAX_PRUNED_PROCEDURES:
                self._pruned_procedures.clear()
            self._pruned_procedures[key] = procedure
        return procedure

    @property
    def reducer(self) -> PairGenerator:
        """The configured search-space reduction strategy."""
        return self._reducer

    def plan(
        self, relation: XRelation | ProbabilisticRelation | XTupleStore
    ) -> CandidatePlan:
        """The execution plan detection would run (after preparation)."""
        relation = self._prepared_relation(relation)
        return plan_candidates(self._reducer, relation)

    def _prepared_relation(
        self, relation: XRelation | ProbabilisticRelation | XTupleStore
    ) -> XRelation | XTupleStore:
        if isinstance(relation, ProbabilisticRelation):
            relation = relation.to_x_relation()
        if self._preparation is not None:
            if not isinstance(relation, XRelation):
                # Preparation hooks rewrite whole relations; rewriting an
                # out-of-core store in place would defeat its read-only
                # worker semantics.  Prepare, then spill.
                raise TypeError(
                    "preparation hooks require an in-memory XRelation; "
                    "materialize the store, prepare, and re-spill "
                    "(store.materialize() → prepare → XRelation.spill)"
                )
            relation = self._preparation(relation)
        return relation

    def detect(
        self,
        relation: XRelation | ProbabilisticRelation | XTupleStore,
        *,
        chunk_size: int | None = None,
        n_jobs: int | None = 1,
        keep_derivations: bool = True,
        keep_compared_pairs: bool = True,
        scheduling: str = "partitioned",
        stream: bool = False,
        prewarm: bool | None = None,
        min_similarity: float | Mapping[str, float] | str | None = None,
    ) -> DetectionResult | Iterator[DetectionResult]:
        """Run steps A–D over one relation and collect the decisions.

        Flat probabilistic relations are embedded into the x-tuple model
        first (Section IV-A as the 1-alternative special case).  The
        relation may be any storage backend satisfying
        :class:`~repro.pdb.storage.XTupleStore` — in particular an
        out-of-core :class:`~repro.pdb.storage.SpillingXTupleStore`
        opened via :func:`repro.pdb.io.open_store`, in which case only
        one chunk-sized working set (plus the store's page cache) is
        ever decoded at a time and results are identical bit for bit to
        the in-memory run.

        >>> from repro.pdb.relations import XRelation
        >>> from repro.pdb.xtuples import TupleAlternative, XTuple
        >>> from repro.matching import (AttributeMatcher,
        ...     FellegiSunterModel, ThresholdClassifier)
        >>> from repro.similarity import (FAST_LEVENSHTEIN,
        ...     UncertainValueComparator)
        >>> relation = XRelation("people", ("name", "job"), [
        ...     XTuple(t, (TupleAlternative({"name": n, "job": j}, 1.0),))
        ...     for t, n, j in [("t1", "meier", "baker"),
        ...                     ("t2", "meyer", "baker"),
        ...                     ("t3", "smith", "clerk")]])
        >>> detector = DuplicateDetector(
        ...     AttributeMatcher({
        ...         "name": UncertainValueComparator(
        ...             FAST_LEVENSHTEIN, cache=True),
        ...         "job": UncertainValueComparator(
        ...             FAST_LEVENSHTEIN, cache=True)}),
        ...     FellegiSunterModel(
        ...         {"name": 0.9, "job": 0.6}, {"name": 0.05, "job": 0.2},
        ...         ThresholdClassifier(10.0, 1.0),
        ...         agreement_threshold=0.8),
        ... )
        >>> detector.detect(relation).matches
        (('t1', 't2'),)
        >>> # Threshold pushdown: identical decisions, pruned kernels.
        >>> detector.detect(relation, min_similarity="auto").matches
        (('t1', 't2'),)

        Parameters
        ----------
        chunk_size:
            Candidate pairs per worker dispatch (default
            :data:`DEFAULT_CHUNK_SIZE`).  Under partitioned scheduling,
            partitions larger than this are split into contiguous
            sub-chunks; chunk boundaries never cross partitions.
        n_jobs:
            Number of worker processes.  1 (default) decides everything
            in-process; ``None`` uses one worker per CPU.  Workers are
            forked and receive *whole partitions*, so each worker's
            similarity-cache working set covers one block neighborhood.
            Storage backends are opened read-only by workers: a forked
            worker re-opens a spilled store's segment files for itself
            and never copies the relation.
        keep_derivations:
            When ``False``, decisions are returned without their
            intermediate comparison matrices (``derivation_input`` is
            ``None``), so large runs don't retain every ``k × l`` matrix.
        keep_compared_pairs:
            When ``False``, the result's ``compared_pairs`` is empty, so
            streaming large runs never accumulates a set of every pair
            id.  Decisions are unaffected.
        scheduling:
            ``"partitioned"`` (default) plans the reducer's block/window
            structure and schedules whole partitions;  ``"striped"`` is
            the legacy mode striping anonymous chunks of the flat pair
            stream across workers (kept for comparison and for reducers
            whose plan should be bypassed).
        stream:
            With ``True`` (partitioned scheduling only), returns a lazy
            iterator of per-partition :class:`DetectionResult` slices
            instead of one collected result — decisions for a partition
            are released to the caller as soon as it is decided, so a
            run over a huge relation never materializes all decisions.
        prewarm:
            Whether to pre-warm the matcher's similarity caches from the
            plan's per-partition vocabulary before executing.  Default
            (``None``) warms exactly when forking (``n_jobs > 1``); when
            the warm table is complete the caches are frozen read-only
            for the pool's lifetime so every worker shares the parent's
            table copy-on-write.  Ignored under striped scheduling.
        min_similarity:
            Threshold pushdown.  ``"auto"`` derives per-attribute
            cutoffs from the decision model's classifier structure
            (:func:`repro.matching.pushdown.derive_floors`) and runs
            attribute matching through the cutoff-banded kernels —
            provably bitwise-equal decisions at a fraction of the
            comparison cost; configurations that cannot prove a safe
            cutoff silently run exact (inspect
            :meth:`attribute_floors`).  A float applies one uniform
            floor, a mapping per-attribute floors — both are
            *assertions* by the caller that similarities below the
            floor cannot change any decision; unlike ``"auto"`` they
            are not validated against the model.  ``None`` (default)
            computes every similarity exactly.  Cache pre-warming
            under pushdown fills the band-keyed cutoff caches instead
            of the exact tables.
        """
        relation = self._prepared_relation(relation)
        procedure = self._resolve_procedure(min_similarity)
        if chunk_size is None:
            chunk_size = DEFAULT_CHUNK_SIZE
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if n_jobs is None:
            n_jobs = multiprocessing.cpu_count()
        if n_jobs < 1:
            raise ValueError("n_jobs must be at least 1 (or None)")
        if scheduling not in ("partitioned", "striped"):
            raise ValueError(
                f"unknown scheduling {scheduling!r}; "
                "expected 'partitioned' or 'striped'"
            )
        if stream and scheduling != "partitioned":
            raise ValueError("stream=True requires partitioned scheduling")

        if scheduling == "striped":
            return self._detect_striped(
                relation,
                procedure,
                chunk_size=chunk_size,
                n_jobs=n_jobs,
                keep_derivations=keep_derivations,
                keep_compared_pairs=keep_compared_pairs,
            )

        plan = plan_candidates(self._reducer, relation)
        slices = self._execute_plan(
            relation,
            plan,
            procedure,
            chunk_size=chunk_size,
            n_jobs=n_jobs,
            keep_derivations=keep_derivations,
            keep_compared_pairs=keep_compared_pairs,
            prewarm=prewarm,
        )
        if stream:
            return slices
        decisions: list[XTupleDecision] = []
        compared: set[tuple[str, str]] = set()
        for piece in slices:
            decisions.extend(piece.decisions)
            if keep_compared_pairs:
                compared.update(piece.compared_pairs)
        return DetectionResult(
            decisions=tuple(decisions),
            compared_pairs=frozenset(compared),
            relation_size=len(relation),
        )

    # ------------------------------------------------------------------
    # Partitioned execution (plan → schedule → execute)
    # ------------------------------------------------------------------

    def _execute_plan(
        self,
        relation: XRelation | XTupleStore,
        plan: CandidatePlan,
        procedure: XTupleDecisionProcedure,
        *,
        chunk_size: int,
        n_jobs: int,
        keep_derivations: bool,
        keep_compared_pairs: bool,
        prewarm: bool | None,
    ) -> Iterator[DetectionResult]:
        """Yield one :class:`DetectionResult` slice per partition."""
        matcher = procedure.matcher
        newly_frozen: list = []
        should_warm = n_jobs > 1 if prewarm is None else prewarm
        if should_warm:
            _, complete = _prewarm_plan(matcher, relation, plan)
            if complete and n_jobs > 1:
                newly_frozen = matcher.freeze_caches()
        try:
            if n_jobs == 1:
                yield from self._execute_serial(
                    relation,
                    plan,
                    procedure,
                    chunk_size,
                    keep_derivations,
                    keep_compared_pairs,
                )
            else:
                yield from self._execute_parallel(
                    relation,
                    plan,
                    procedure,
                    chunk_size,
                    n_jobs,
                    keep_derivations,
                    keep_compared_pairs,
                )
        finally:
            # Restore only the freezes this run established; caches the
            # caller froze beforehand stay frozen.
            for cache in newly_frozen:
                cache.thaw()

    def _execute_serial(
        self,
        relation: XRelation | XTupleStore,
        plan: CandidatePlan,
        procedure: XTupleDecisionProcedure,
        chunk_size: int,
        keep_derivations: bool,
        keep_compared_pairs: bool,
    ) -> Iterator[DetectionResult]:
        decide = procedure.decide
        size = len(relation)
        for partition in plan:
            # Load the working set chunk by chunk, exactly like the
            # parallel dispatch path: residency stays bounded by
            # chunk_size even when a plan degenerates to one partition
            # spanning the whole relation (full comparison, legacy
            # pairs()-only reducers).
            decisions: list[XTupleDecision] = []
            pairs = partition.pairs
            for start in range(0, len(pairs), chunk_size):
                chunk = pairs[start : start + chunk_size]
                working_set = _chunk_working_set(relation, chunk)
                decisions.extend(
                    decide(
                        working_set[left_id],
                        working_set[right_id],
                        keep_derivations=keep_derivations,
                    )
                    for left_id, right_id in chunk
                )
            yield _slice_result(
                partition, tuple(decisions), size, keep_compared_pairs
            )

    def _execute_parallel(
        self,
        relation: XRelation | XTupleStore,
        plan: CandidatePlan,
        procedure: XTupleDecisionProcedure,
        chunk_size: int,
        n_jobs: int,
        keep_derivations: bool,
        keep_compared_pairs: bool,
    ) -> Iterator[DetectionResult]:
        size = len(relation)
        # One dispatch batch holds whole consecutive partitions (split
        # only when a single partition exceeds chunk_size) and carries
        # ~chunk_size pairs, so worker round trips stay as coarse as the
        # striped fan-out while cache working sets stay block-aligned.
        batches: list[list[tuple[int, tuple[tuple[str, str], ...]]]] = []
        batch: list[tuple[int, tuple[tuple[str, str], ...]]] = []
        batched_pairs = 0
        for index, partition in enumerate(plan.partitions):
            pairs = partition.pairs
            for start in range(0, len(pairs), chunk_size):
                piece = pairs[start : start + chunk_size]
                batch.append((index, piece))
                batched_pairs += len(piece)
                if batched_pairs >= chunk_size:
                    batches.append(batch)
                    batch = []
                    batched_pairs = 0
        if batch:
            batches.append(batch)
        if not batches:
            return
        context = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        with context.Pool(
            n_jobs,
            initializer=_init_worker,
            initargs=(procedure, relation, keep_derivations),
        ) as pool:
            current: int | None = None
            bucket: list[XTupleDecision] = []
            for batch_results in pool.imap(_decide_batch, batches):
                for index, chunk_decisions in batch_results:
                    if current is None:
                        current = index
                    elif index != current:
                        yield _slice_result(
                            plan.partitions[current],
                            tuple(bucket),
                            size,
                            keep_compared_pairs,
                        )
                        bucket = []
                        current = index
                    bucket.extend(chunk_decisions)
            if current is not None:
                yield _slice_result(
                    plan.partitions[current],
                    tuple(bucket),
                    size,
                    keep_compared_pairs,
                )

    # ------------------------------------------------------------------
    # Striped execution (legacy fan-out, pre-planner)
    # ------------------------------------------------------------------

    def _detect_striped(
        self,
        relation: XRelation | XTupleStore,
        procedure: XTupleDecisionProcedure,
        *,
        chunk_size: int,
        n_jobs: int,
        keep_derivations: bool,
        keep_compared_pairs: bool,
    ) -> DetectionResult:
        seen: set[tuple[str, str]] = set()

        def unique_pairs() -> Iterator[tuple[str, str]]:
            for left_id, right_id in self._reducer.pairs(relation):
                if left_id == right_id:
                    continue
                pair = _ordered(left_id, right_id)
                if pair in seen:
                    continue
                seen.add(pair)
                yield pair

        decisions: list[XTupleDecision] = []
        if n_jobs == 1:
            decide = procedure.decide
            get = relation.get
            for chunk in _chunked(unique_pairs(), chunk_size):
                for left_id, right_id in chunk:
                    decisions.append(
                        decide(
                            get(left_id),
                            get(right_id),
                            keep_derivations=keep_derivations,
                        )
                    )
        else:
            context = multiprocessing.get_context(
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else None
            )
            with context.Pool(
                n_jobs,
                initializer=_init_worker,
                initargs=(procedure, relation, keep_derivations),
            ) as pool:
                for chunk_decisions in pool.imap(
                    _decide_chunk, _chunked(unique_pairs(), chunk_size)
                ):
                    decisions.extend(chunk_decisions)
        return DetectionResult(
            decisions=tuple(decisions),
            compared_pairs=(
                frozenset(seen) if keep_compared_pairs else frozenset()
            ),
            relation_size=len(relation),
        )

    def detect_between(
        self,
        left: XRelation | ProbabilisticRelation,
        right: XRelation | ProbabilisticRelation,
        **detect_options,
    ) -> DetectionResult | Iterator[DetectionResult]:
        """Inter-source detection: union the sources, then detect.

        The paper's scenario — consolidating two autonomous probabilistic
        sources (ℛ1/ℛ2 or ℛ3/ℛ4) — reduces to detection over the union;
        intra-source duplicates are found along the way.  Keyword options
        are forwarded to :meth:`detect`.
        """
        if isinstance(left, ProbabilisticRelation):
            left = left.to_x_relation()
        if isinstance(right, ProbabilisticRelation):
            right = right.to_x_relation()
        if not (
            isinstance(left, XRelation) and isinstance(right, XRelation)
        ):
            raise TypeError(
                "detect_between unions its sources in memory; for "
                "out-of-core runs union the relations first and spill "
                "the union (XRelation.union(...).spill(path)), then "
                "call detect on the opened store"
            )
        return self.detect(left.union(right), **detect_options)

    def __repr__(self) -> str:
        return (
            f"DuplicateDetector({self._procedure!r}, "
            f"reducer={self._reducer!r})"
        )
