"""Combination functions φ : [0, 1]ⁿ → ℝ (Equation 3).

Step 1 of every decision model (Figure 3) collapses the comparison vector
into a single similarity degree ``sim(t1, t2) = φ(c⃗)``.  The paper notes
the result is *normalized* for knowledge-based techniques (a certainty
factor) and *non-normalized* for probabilistic ones (a matching weight).

Provided combination functions:

* :class:`WeightedSum` — the paper's running example
  ``φ(c⃗) = 0.8·c1 + 0.2·c2``; normalized when weights sum to 1.
* :class:`Average`, :class:`Minimum`, :class:`Maximum`, :class:`Product` —
  standard normalized monotone combiners.
* :class:`LogLikelihoodRatio` — the Fellegi–Sunter matching weight
  ``log2 m(c⃗)/u(c⃗)`` under per-attribute conditional independence
  (non-normalized; may be negative).
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from typing import Protocol, runtime_checkable

from repro.matching.comparison import ComparisonVector
from repro.matching.pushdown import SimilarityFloors


@runtime_checkable
class CombinationFunction(Protocol):
    """φ: maps a comparison vector to a similarity degree.

    Implementations expose :attr:`normalized` so threshold classifiers
    can sanity-check their configuration.
    """

    normalized: bool

    def __call__(self, vector: ComparisonVector) -> float:  # pragma: no cover
        ...


def _weights_for(
    vector: ComparisonVector, weights: Mapping[str, float] | Sequence[float]
) -> list[float]:
    """Resolve a weight specification against a concrete vector."""
    if isinstance(weights, Mapping):
        try:
            return [float(weights[attr]) for attr in vector.attributes]
        except KeyError as missing:
            raise KeyError(
                f"no weight for attribute {missing.args[0]!r}"
            ) from None
    resolved = [float(w) for w in weights]
    if len(resolved) != len(vector):
        raise ValueError(
            f"{len(resolved)} weights for a {len(vector)}-ary vector"
        )
    return resolved


class WeightedSum:
    """``φ(c⃗) = Σ wᵢ·cᵢ`` — the paper's example combiner.

    Parameters
    ----------
    weights:
        Either a mapping from attribute name to weight or a sequence
        aligned with the comparison vector.  Weights must be non-negative
        and sum to a positive value.
    """

    def __init__(
        self, weights: Mapping[str, float] | Sequence[float]
    ) -> None:
        values = (
            list(weights.values())
            if isinstance(weights, Mapping)
            else [float(w) for w in weights]
        )
        if not values:
            raise ValueError("need at least one weight")
        if any(w < 0.0 for w in values):
            raise ValueError(f"weights must be non-negative: {values}")
        total = sum(values)
        if total <= 0.0:
            raise ValueError("weights must sum to a positive value")
        self._weights = weights
        #: Normalized iff the weights form a convex combination.
        self.normalized = abs(total - 1.0) <= 1e-9

    def __call__(self, vector: ComparisonVector) -> float:
        weights = _weights_for(vector, self._weights)
        return sum(w * c for w, c in zip(weights, vector.values))

    def __repr__(self) -> str:
        return f"WeightedSum({self._weights!r})"


class Average:
    """Unweighted mean of the comparison vector (normalized)."""

    normalized = True

    def __call__(self, vector: ComparisonVector) -> float:
        return sum(vector.values) / len(vector)

    def __repr__(self) -> str:
        return "Average()"


class Minimum:
    """Most pessimistic attribute similarity (normalized)."""

    normalized = True

    def __call__(self, vector: ComparisonVector) -> float:
        return min(vector.values)

    def __repr__(self) -> str:
        return "Minimum()"


class Maximum:
    """Most optimistic attribute similarity (normalized)."""

    normalized = True

    def __call__(self, vector: ComparisonVector) -> float:
        return max(vector.values)

    def __repr__(self) -> str:
        return "Maximum()"


class Product:
    """Product of attribute similarities (normalized, conjunctive)."""

    normalized = True

    def __call__(self, vector: ComparisonVector) -> float:
        result = 1.0
        for value in vector.values:
            result *= value
        return result

    def __repr__(self) -> str:
        return "Product()"


class LogLikelihoodRatio:
    """Fellegi–Sunter matching weight under conditional independence.

    Each attribute *i* is reduced to an agreement bit
    ``γᵢ = [cᵢ ≥ agreement_threshold]``; the weight is

    ``φ(c⃗) = Σᵢ log2(mᵢ/uᵢ)`` over agreeing attributes plus
    ``Σᵢ log2((1-mᵢ)/(1-uᵢ))`` over disagreeing ones —

    the logarithm of ``R = m(c⃗)/u(c⃗)`` of Equations 1–2 when attribute
    agreements are independent given the match status.  Non-normalized:
    positive weights indicate match evidence, negative ones non-match
    evidence.

    Parameters
    ----------
    m_probabilities / u_probabilities:
        Per-attribute conditional agreement probabilities
        ``mᵢ = P(γᵢ=1 | M)`` and ``uᵢ = P(γᵢ=1 | U)``, each in (0, 1).
    agreement_threshold:
        Similarity level from which an attribute counts as agreeing.
    """

    normalized = False

    def __init__(
        self,
        m_probabilities: Mapping[str, float],
        u_probabilities: Mapping[str, float],
        *,
        agreement_threshold: float = 0.85,
    ) -> None:
        if set(m_probabilities) != set(u_probabilities):
            raise ValueError(
                "m- and u-probabilities must cover the same attributes"
            )
        for name, probs in (("m", m_probabilities), ("u", u_probabilities)):
            for attr, prob in probs.items():
                if not 0.0 < prob < 1.0:
                    raise ValueError(
                        f"{name}-probability of {attr!r} must lie in "
                        f"(0, 1), got {prob}"
                    )
        if not 0.0 < agreement_threshold <= 1.0:
            raise ValueError(
                f"agreement_threshold must lie in (0, 1], "
                f"got {agreement_threshold}"
            )
        self._m = {k: float(v) for k, v in m_probabilities.items()}
        self._u = {k: float(v) for k, v in u_probabilities.items()}
        self._threshold = agreement_threshold

    def agreement_pattern(self, vector: ComparisonVector) -> tuple[bool, ...]:
        """The binary agreement vector γ derived from c⃗."""
        return tuple(c >= self._threshold for c in vector.values)

    def attribute_floors(self) -> SimilarityFloors:
        """Pushdown floors: the agreement threshold, for every attribute.

        Like the full Fellegi–Sunter model, this combiner reads each
        similarity only through ``γ_a = [c_a ≥ agreement_threshold]``,
        so similarities below the threshold are interchangeable with
        0.0 bit for bit (see :mod:`repro.matching.pushdown`).
        """
        return SimilarityFloors.uniform(self._threshold)

    def __call__(self, vector: ComparisonVector) -> float:
        weight = 0.0
        for attribute, similarity in zip(vector.attributes, vector.values):
            if attribute not in self._m:
                raise KeyError(
                    f"no m/u probabilities for attribute {attribute!r}"
                )
            m, u = self._m[attribute], self._u[attribute]
            if similarity >= self._threshold:
                weight += math.log2(m / u)
            else:
                weight += math.log2((1.0 - m) / (1.0 - u))
        return weight

    def __repr__(self) -> str:
        return (
            f"LogLikelihoodRatio(m={self._m!r}, u={self._u!r}, "
            f"threshold={self._threshold})"
        )


#: Registry by name, for experiment configuration files.
COMBINATION_FUNCTIONS = {
    "average": Average,
    "minimum": Minimum,
    "maximum": Maximum,
    "product": Product,
    "weighted_sum": WeightedSum,
    "log_likelihood_ratio": LogLikelihoodRatio,
}
