"""The paper's core contribution: duplicate detection in probabilistic data.

* attribute value matching — :class:`AttributeMatcher`,
  :class:`ComparisonVector`, :class:`ComparisonMatrix` (Sections III-C,
  IV-A, IV-B);
* combination functions φ — :mod:`repro.matching.combination`
  (Equation 3);
* decision models — :mod:`repro.matching.decision` (knowledge-based
  rules, Fellegi–Sunter, EM estimation);
* derivation functions ϑ — :mod:`repro.matching.derivation`
  (Equations 6–9 and the expected matching result);
* the Figure-6 procedures — :class:`XTupleDecisionProcedure`;
* the five-step pipeline — :class:`DuplicateDetector`;
* match clustering — :mod:`repro.matching.clustering`.
"""

from repro.matching.clustering import (
    ClusteringResult,
    UnionFind,
    cluster_matches,
)
from repro.matching.combination import (
    COMBINATION_FUNCTIONS,
    Average,
    CombinationFunction,
    LogLikelihoodRatio,
    Maximum,
    Minimum,
    Product,
    WeightedSum,
)
from repro.matching.comparison import (
    AttributeMatcher,
    ComparisonMatrix,
    ComparisonVector,
)
from repro.matching.decision import (
    Calibration,
    CalibrationPair,
    CalibrationSet,
    CalibratedModel,
    CertaintyCombination,
    CombinedDecisionModel,
    Condition,
    Decision,
    DecisionModel,
    DecisionReason,
    EMEstimate,
    FellegiSunterModel,
    ForcedUnsureClassifier,
    GateTrip,
    IdentificationRule,
    MatchStatus,
    ReasonCategory,
    ReasonCode,
    RuleBasedModel,
    SafetyGates,
    ThresholdClassifier,
    agreement_pattern,
    calibrate,
    calibrate_conformal,
    calibrate_np,
    categorize_decision,
    check_safety_gates,
    empirical_fpr,
    estimate_em,
    paper_example_rule,
    select_thresholds,
)
from repro.matching.derivation import (
    DERIVATIONS,
    DerivationFunction,
    DerivationInput,
    ExpectedMatchingResult,
    ExpectedSimilarity,
    MatchProbability,
    MatchingWeight,
    MaximumSimilarity,
    MostProbableWorldSimilarity,
    normalized_weights,
)
from repro.matching.engine import XTupleDecision, XTupleDecisionProcedure
from repro.matching.executor import (
    ExecutionEngine,
    ExecutionReport,
    ExecutionSettings,
    PartitionProgress,
)
from repro.matching.pushdown import SimilarityFloors, derive_floors
from repro.matching.iterative import IterativeResolver, ResolutionOutcome
from repro.matching.pipeline import (
    DEFAULT_CHUNK_SIZE,
    DetectionResult,
    DuplicateDetector,
    FullComparison,
    PairGenerator,
)

__all__ = [
    "COMBINATION_FUNCTIONS",
    "DEFAULT_CHUNK_SIZE",
    "DERIVATIONS",
    "AttributeMatcher",
    "Average",
    "Calibration",
    "CalibrationPair",
    "CalibrationSet",
    "CalibratedModel",
    "CertaintyCombination",
    "ClusteringResult",
    "CombinationFunction",
    "CombinedDecisionModel",
    "ComparisonMatrix",
    "ComparisonVector",
    "Condition",
    "Decision",
    "DecisionModel",
    "DecisionReason",
    "DetectionResult",
    "DuplicateDetector",
    "EMEstimate",
    "ExecutionEngine",
    "ExecutionReport",
    "ExecutionSettings",
    "ExpectedMatchingResult",
    "ExpectedSimilarity",
    "FellegiSunterModel",
    "ForcedUnsureClassifier",
    "FullComparison",
    "GateTrip",
    "IdentificationRule",
    "IterativeResolver",
    "LogLikelihoodRatio",
    "MatchProbability",
    "MatchStatus",
    "MatchingWeight",
    "Maximum",
    "MaximumSimilarity",
    "Minimum",
    "MostProbableWorldSimilarity",
    "PairGenerator",
    "PartitionProgress",
    "Product",
    "ReasonCategory",
    "ReasonCode",
    "ResolutionOutcome",
    "RuleBasedModel",
    "SafetyGates",
    "SimilarityFloors",
    "ThresholdClassifier",
    "UnionFind",
    "WeightedSum",
    "XTupleDecision",
    "XTupleDecisionProcedure",
    "agreement_pattern",
    "calibrate",
    "calibrate_conformal",
    "calibrate_np",
    "categorize_decision",
    "check_safety_gates",
    "cluster_matches",
    "derive_floors",
    "empirical_fpr",
    "estimate_em",
    "normalized_weights",
    "paper_example_rule",
    "select_thresholds",
]
