"""Iterative match-merge entity resolution (R-Swoosh style, [18]).

Benjelloun et al.'s *Swoosh* family — cited by the paper as the generic
entity-resolution framework — interleaves matching and merging: when two
records match they are *merged immediately* and the merged record is
compared again, because a merge can expose matches that neither source
record exhibited (a fused distribution accumulates evidence from both).

:class:`IterativeResolver` implements the R-Swoosh control flow over
x-tuples, reusing this library's building blocks:

* match  — any :class:`~repro.matching.engine.XTupleDecisionProcedure`
  (so both Figure-6 derivations work);
* merge  — any :mod:`repro.fusion` value-fusion strategy via
  :func:`~repro.fusion.fuse.fuse_cluster`.

Termination follows from the merge domination argument of [18] under
well-behaved match/merge pairs; a safety cap on iterations guards
against pathological configurations and raises instead of spinning.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fusion.fuse import ValueFusion, fuse_cluster
from repro.fusion.strategies import mediate_mixture
from repro.matching.engine import XTupleDecisionProcedure
from repro.pdb.relations import XRelation
from repro.pdb.xtuples import XTuple


@dataclass(frozen=True)
class ResolutionOutcome:
    """Result of an iterative match-merge run.

    Attributes
    ----------
    relation:
        The resolved relation (one tuple per discovered entity).
    merges:
        The merge events in order: each is the tuple ids that were
        combined at that step (source ids, not intermediate ids).
    comparisons:
        Number of pair comparisons performed.
    source_of:
        Mapping from resolved tuple id to the set of source tuple ids it
        absorbed (singletons map to themselves).
    """

    relation: XRelation
    merges: tuple[tuple[str, ...], ...]
    comparisons: int
    source_of: dict[str, frozenset[str]] = field(default_factory=dict)

    @property
    def merged_count(self) -> int:
        """How many source tuples were merged away."""
        return sum(len(m) - 1 for m in self.merges)


class IterativeResolver:
    """R-Swoosh-style resolution over an x-relation.

    Parameters
    ----------
    procedure:
        The pairwise decision procedure (Figure 6).
    value_fusion:
        Conflict resolution used when two x-tuples merge.
    max_iterations:
        Safety cap on total comparisons (default: 50·n² of the input —
        far beyond any terminating run).
    """

    def __init__(
        self,
        procedure: XTupleDecisionProcedure,
        *,
        value_fusion: ValueFusion = mediate_mixture,
        max_iterations: int | None = None,
    ) -> None:
        self._procedure = procedure
        self._value_fusion = value_fusion
        self._max_iterations = max_iterations

    def _merge(self, left: XTuple, right: XTuple) -> XTuple:
        return fuse_cluster(
            [left, right], value_fusion=self._value_fusion
        )

    def resolve(self, relation: XRelation) -> ResolutionOutcome:
        """Run match-merge to a fixpoint.

        The classic R-Swoosh loop: keep a resolved set ``R`` and a work
        list ``W``; take a record from ``W``, compare against ``R`` —
        on the first match, remove the partner from ``R``, merge, and
        push the merged record back onto ``W``; otherwise move the
        record into ``R``.
        """
        work: list[XTuple] = list(relation)
        resolved: list[XTuple] = []
        merges: list[tuple[str, ...]] = []
        sources: dict[str, frozenset[str]] = {
            xtuple.tuple_id: frozenset({xtuple.tuple_id})
            for xtuple in relation
        }
        comparisons = 0
        budget = (
            self._max_iterations
            if self._max_iterations is not None
            else max(100, 50 * len(relation) ** 2)
        )

        while work:
            current = work.pop()
            partner_index: int | None = None
            for index, candidate in enumerate(resolved):
                comparisons += 1
                if comparisons > budget:
                    raise RuntimeError(
                        "iterative resolution exceeded its comparison "
                        "budget; the match/merge configuration likely "
                        "oscillates"
                    )
                decision = self._procedure.decide(current, candidate)
                if decision.status.value == "m":
                    partner_index = index
                    break
            if partner_index is None:
                resolved.append(current)
                continue
            partner = resolved.pop(partner_index)
            merged = self._merge(current, partner)
            combined_sources = sources.pop(current.tuple_id) | sources.pop(
                partner.tuple_id
            )
            sources[merged.tuple_id] = combined_sources
            merges.append(tuple(sorted(combined_sources)))
            work.append(merged)

        outcome_relation = XRelation(
            f"resolved({relation.name})", relation.schema, resolved
        )
        return ResolutionOutcome(
            relation=outcome_relation,
            merges=tuple(merges),
            comparisons=comparisons,
            source_of=sources,
        )
