"""Execution introspection: run reports and partition progress events.

Large detections are opaque without this: a caller streaming a
million-pair run wants to know how far along it is, whether the
scheduler had to subdivide skewed blocks, and whether cache pre-warming
actually completed before the fork.  The engine fills one
:class:`ExecutionReport` per run (exposed as
``DuplicateDetector.last_report``) and, when an observer callable is
installed, emits one :class:`PartitionProgress` event per completed
partition slice — cheap enough to leave on in production.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field


@dataclass(frozen=True)
class PartitionProgress:
    """One completed partition slice of a running detection."""

    #: Label of the completed partition.
    label: str
    #: Pairs the partition contributed.
    pairs: int
    #: Index of the partition in plan order (0-based).
    index: int
    #: Total partitions in the plan.
    partitions: int
    #: Pairs decided so far, including this partition.
    decided_pairs: int
    #: Total pairs the plan will decide.
    total_pairs: int

    @property
    def fraction(self) -> float:
        """Completed fraction of the run's pairs (0.0 – 1.0)."""
        if self.total_pairs <= 0:
            return 1.0
        return self.decided_pairs / self.total_pairs


#: Observer signature: called once per completed partition slice, in
#: plan order, from the process driving the execution.
ProgressObserver = Callable[[PartitionProgress], None]


@dataclass(frozen=True)
class FaultEvent:
    """One recovery action of a supervised run.

    Emitted by the fault layer (see
    :mod:`repro.matching.executor.faults`) whenever a failed dispatch
    is retried (``kind="retry"``), re-executed in-process
    (``kind="degraded"``) or resolved terminally (``kind="failed"``) —
    the observable trail that makes silent degradation impossible.
    """

    #: Recovery action: ``"retry"``, ``"degraded"`` or ``"failed"``.
    kind: str
    #: Taxonomy tag of the underlying fault (``"crash"``/``"timeout"``).
    fault: str
    #: Labels of the plan partitions the faulting work unit touched.
    partitions: tuple[str, ...]
    #: Attempt (1-based) that observed the fault.
    attempt: int
    #: Human-readable description of the underlying error.
    error: str


#: Observer signature for recovery actions: called from the process
#: driving the execution, once per retry/degradation/terminal failure.
FaultObserver = Callable[[FaultEvent], None]


@dataclass
class ExecutionReport:
    """What one execution did — scheduling decisions included.

    Counters are filled as the run progresses (a streamed run's report
    is complete only once the slice iterator is exhausted).
    """

    #: Scheduling mode the engine ran ("partitioned" or "stealing").
    scheduling: str = ""
    #: Worker processes used (1 = in-process).
    n_jobs: int = 1
    #: Partitions in the executed plan.
    partitions: int = 0
    #: Candidate pairs in the executed plan.
    total_pairs: int = 0
    #: Comparison-kernel backend recorded in the run's settings
    #: (``"auto"`` when the caller never resolved a concrete one).
    kernel_backend: str = ""
    #: Similarity-cache entries stored by pre-warming.
    prewarmed_entries: int = 0
    #: Whether the warmed caches were frozen around the fork.
    caches_frozen: bool = False
    #: Partitions that exceeded the split budget.
    oversized_partitions: int = 0
    #: Oversized partitions a reducer subdivided by sub-key.
    subkey_split_partitions: int = 0
    #: Oversized partitions (or sub-key groups) banded contiguously.
    banded_partitions: int = 0
    #: Schedulable work units after subdivision (stealing mode).
    work_units: int = 0
    #: Dispatch tasks handed to the worker queue.
    dispatch_tasks: int = 0
    #: Pairs decided so far.
    decided_pairs: int = 0
    #: Decisions so far with η = m (declared duplicates).
    decided_matches: int = 0
    #: Decisions so far with η = p (clerical review).
    decided_possibles: int = 0
    #: Decisions so far with η = u (declared distinct).
    decided_unmatches: int = 0
    #: Partition slices yielded so far.
    completed_partitions: int = 0
    #: Dispatch attempts that raised inside a worker (or in-process).
    worker_crashes: int = 0
    #: Dispatch attempts that missed their deadline (hang or dead worker).
    worker_timeouts: int = 0
    #: Failed attempts that were re-dispatched within the retry budget.
    retried_dispatches: int = 0
    #: Exhausted work units re-executed in-process (``on_error="degrade"``).
    degraded_tasks: int = 0
    #: Terminal ``PartitionFailure`` objects, one per failed partition
    #: (``on_error="skip"``, or degradation that itself failed).
    failures: list = field(default_factory=list)

    @property
    def recovered(self) -> bool:
        """Whether the run saw faults but still decided every partition."""
        return (
            self.worker_crashes + self.worker_timeouts > 0
            and not self.failures
        )

    def summary(self) -> str:
        """One log-friendly line describing the run."""
        parts = [
            f"{self.scheduling} n_jobs={self.n_jobs}",
            f"{self.completed_partitions}/{self.partitions} partitions",
            f"{self.decided_pairs}/{self.total_pairs} pairs",
            f"eta m={self.decided_matches} p={self.decided_possibles} "
            f"u={self.decided_unmatches}",
        ]
        if self.oversized_partitions:
            parts.append(
                f"split {self.oversized_partitions} oversized "
                f"({self.subkey_split_partitions} by sub-key, "
                f"{self.banded_partitions} banded) "
                f"into {self.work_units} units"
            )
        if self.dispatch_tasks:
            parts.append(f"{self.dispatch_tasks} dispatches")
        if self.prewarmed_entries:
            frozen = "frozen" if self.caches_frozen else "unfrozen"
            parts.append(
                f"prewarmed {self.prewarmed_entries} entries ({frozen})"
            )
        faults = self.worker_crashes + self.worker_timeouts
        if faults:
            parts.append(
                f"{faults} faults ({self.worker_crashes} crashes, "
                f"{self.worker_timeouts} timeouts; "
                f"{self.retried_dispatches} retried, "
                f"{self.degraded_tasks} degraded, "
                f"{len(self.failures)} failed)"
            )
        return ", ".join(parts)


@dataclass
class ProgressTracker:
    """Shared bookkeeping behind the engine's slice emission.

    Wraps the run's :class:`ExecutionReport` and optional observer so
    every execution path reports identically: the engine calls
    :meth:`slice_done` once per partition slice, in plan order.
    """

    report: ExecutionReport
    observer: ProgressObserver | None = None
    fault_observer: FaultObserver | None = None

    def start(self, plan, *, scheduling: str, n_jobs: int) -> None:
        """Record the plan shape before execution begins."""
        self.report.scheduling = scheduling
        self.report.n_jobs = n_jobs
        self.report.partitions = len(plan.partitions)
        self.report.total_pairs = plan.total_pairs

    def slice_done(self, partition, decisions=()) -> None:
        """Account one completed partition and notify the observer.

        *decisions* are the partition's
        :class:`~repro.matching.engine.XTupleDecision` objects; their
        matching values feed the report's η counters (and, through the
        audit layer, the manifest's per-partition counts).
        """
        report = self.report
        report.decided_pairs += len(partition.pairs)
        report.completed_partitions += 1
        for decided in decisions:
            status = decided.decision.status.value
            if status == "m":
                report.decided_matches += 1
            elif status == "p":
                report.decided_possibles += 1
            else:
                report.decided_unmatches += 1
        if self.observer is not None:
            self.observer(
                PartitionProgress(
                    label=partition.label,
                    pairs=len(partition.pairs),
                    index=report.completed_partitions - 1,
                    partitions=report.partitions,
                    decided_pairs=report.decided_pairs,
                    total_pairs=report.total_pairs,
                )
            )

    def fault_event(self, event: FaultEvent) -> None:
        """Notify the fault observer of one recovery action."""
        if self.fault_observer is not None:
            self.fault_observer(event)


__all__ = [
    "ExecutionReport",
    "FaultEvent",
    "FaultObserver",
    "PartitionProgress",
    "ProgressObserver",
    "ProgressTracker",
]
