"""Execution introspection: run reports and partition progress events.

Large detections are opaque without this: a caller streaming a
million-pair run wants to know how far along it is, whether the
scheduler had to subdivide skewed blocks, and whether cache pre-warming
actually completed before the fork.  The engine fills one
:class:`ExecutionReport` per run (exposed as
``DuplicateDetector.last_report``) and, when an observer callable is
installed, emits one :class:`PartitionProgress` event per completed
partition slice — cheap enough to leave on in production.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass


@dataclass(frozen=True)
class PartitionProgress:
    """One completed partition slice of a running detection."""

    #: Label of the completed partition.
    label: str
    #: Pairs the partition contributed.
    pairs: int
    #: Index of the partition in plan order (0-based).
    index: int
    #: Total partitions in the plan.
    partitions: int
    #: Pairs decided so far, including this partition.
    decided_pairs: int
    #: Total pairs the plan will decide.
    total_pairs: int

    @property
    def fraction(self) -> float:
        """Completed fraction of the run's pairs (0.0 – 1.0)."""
        if self.total_pairs <= 0:
            return 1.0
        return self.decided_pairs / self.total_pairs


#: Observer signature: called once per completed partition slice, in
#: plan order, from the process driving the execution.
ProgressObserver = Callable[[PartitionProgress], None]


@dataclass
class ExecutionReport:
    """What one execution did — scheduling decisions included.

    Counters are filled as the run progresses (a streamed run's report
    is complete only once the slice iterator is exhausted).
    """

    #: Scheduling mode the engine ran ("partitioned" or "stealing").
    scheduling: str = ""
    #: Worker processes used (1 = in-process).
    n_jobs: int = 1
    #: Partitions in the executed plan.
    partitions: int = 0
    #: Candidate pairs in the executed plan.
    total_pairs: int = 0
    #: Similarity-cache entries stored by pre-warming.
    prewarmed_entries: int = 0
    #: Whether the warmed caches were frozen around the fork.
    caches_frozen: bool = False
    #: Partitions that exceeded the split budget.
    oversized_partitions: int = 0
    #: Oversized partitions a reducer subdivided by sub-key.
    subkey_split_partitions: int = 0
    #: Oversized partitions (or sub-key groups) banded contiguously.
    banded_partitions: int = 0
    #: Schedulable work units after subdivision (stealing mode).
    work_units: int = 0
    #: Dispatch tasks handed to the worker queue.
    dispatch_tasks: int = 0
    #: Pairs decided so far.
    decided_pairs: int = 0
    #: Partition slices yielded so far.
    completed_partitions: int = 0

    def summary(self) -> str:
        """One log-friendly line describing the run."""
        parts = [
            f"{self.scheduling} n_jobs={self.n_jobs}",
            f"{self.completed_partitions}/{self.partitions} partitions",
            f"{self.decided_pairs}/{self.total_pairs} pairs",
        ]
        if self.oversized_partitions:
            parts.append(
                f"split {self.oversized_partitions} oversized "
                f"({self.subkey_split_partitions} by sub-key, "
                f"{self.banded_partitions} banded) "
                f"into {self.work_units} units"
            )
        if self.dispatch_tasks:
            parts.append(f"{self.dispatch_tasks} dispatches")
        if self.prewarmed_entries:
            frozen = "frozen" if self.caches_frozen else "unfrozen"
            parts.append(
                f"prewarmed {self.prewarmed_entries} entries ({frozen})"
            )
        return ", ".join(parts)


@dataclass
class ProgressTracker:
    """Shared bookkeeping behind the engine's slice emission.

    Wraps the run's :class:`ExecutionReport` and optional observer so
    every execution path reports identically: the engine calls
    :meth:`slice_done` once per partition slice, in plan order.
    """

    report: ExecutionReport
    observer: ProgressObserver | None = None

    def start(self, plan, *, scheduling: str, n_jobs: int) -> None:
        """Record the plan shape before execution begins."""
        self.report.scheduling = scheduling
        self.report.n_jobs = n_jobs
        self.report.partitions = len(plan.partitions)
        self.report.total_pairs = plan.total_pairs

    def slice_done(self, partition) -> None:
        """Account one completed partition and notify the observer."""
        report = self.report
        report.decided_pairs += len(partition.pairs)
        report.completed_partitions += 1
        if self.observer is not None:
            self.observer(
                PartitionProgress(
                    label=partition.label,
                    pairs=len(partition.pairs),
                    index=report.completed_partitions - 1,
                    partitions=report.partitions,
                    decided_pairs=report.decided_pairs,
                    total_pairs=report.total_pairs,
                )
            )


__all__ = [
    "ExecutionReport",
    "PartitionProgress",
    "ProgressObserver",
    "ProgressTracker",
]
