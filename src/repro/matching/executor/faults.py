"""Fault tolerance for the execution engine: taxonomy, retry, supervision.

The paper's pipeline assumes every comparison completes; a production
run does not get that luxury — worker processes die, comparisons hang
on pathological inputs, and out-of-core segments rot on disk.  This
module gives the executor a *fault model*:

* a structured error taxonomy — :class:`WorkerCrash` (a work unit's
  dispatch raised or its process died), :class:`WorkerTimeout` (a
  dispatch missed its deadline) and the terminal
  :class:`PartitionFailure` — every instance carries the partition
  label(s), multi-source tags and attempt count, so a failure report
  is attributable without log spelunking;
* a :class:`RetryPolicy` (attempt budget, per-dispatch timeout,
  exponential backoff) carried by
  :class:`~repro.matching.executor.scheduler.ExecutionSettings`;
* the :class:`SupervisedDispatcher`, the driver behind the scheduler's
  supervised parallel paths: every dispatch is tracked against its
  deadline, failed attempts are retried up to the budget, and an
  exhausted work unit is resolved per ``on_error`` —

  ``"raise"``
      raise a :class:`PartitionFailure` (chained to the underlying
      fault) and abort the run;
  ``"degrade"``
      re-execute the work unit *in-process* in the parent.  Work units
      are pure functions of their pair ids and the configured
      procedure, so a degraded re-execution preserves bitwise-identical
      decisions — the run completes correctly, merely slower;
  ``"skip"``
      drop the unit's partitions from the results and record one
      :class:`PartitionFailure` per partition in
      :attr:`ExecutionReport.failures
      <repro.matching.executor.progress.ExecutionReport.failures>` —
      the partial-run mode for consolidation-style workloads that
      prefer serving the healthy partitions over failing whole.

Every recovery is *observable*: retries, degradations and failures
increment report counters and emit
:class:`~repro.matching.executor.progress.FaultEvent` objects, so a
run can never degrade silently (the chaos CI job pins exactly this).

Supervision is opt-in: with the default policy (one attempt, no
timeout) and ``on_error="raise"`` the scheduler keeps its zero-overhead
unsupervised paths and errors propagate raw, exactly as before the
fault layer existed.

A genuinely *killed* worker (SIGKILL, ``os._exit``) never reports
back — the pool respawns a replacement but the in-flight task is lost,
so process death is detected as a :class:`WorkerTimeout` once the
dispatch deadline lapses.  Supervising against crashes therefore needs
``RetryPolicy(timeout=...)`` set; exceptions raised *inside* a live
worker surface immediately as :class:`WorkerCrash` without any
deadline.

In-process attempts (serial execution, ``n_jobs=1`` stealing) honor
the same timeout *cooperatively*: the engine's chunk loops call
:func:`check_deadline` at every chunk boundary, and a lapsed attempt
raises :class:`DeadlineExceeded` — classified by
:func:`run_supervised_inline` as a :class:`WorkerTimeout` and resolved
through exactly the same retry → degrade/skip/raise ladder as a
dispatched timeout.  Only the degraded re-execution runs
deadline-free: it is the run's last resort and must complete.
"""

from __future__ import annotations

import heapq
import queue
import time
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass, field

from repro.matching.executor.progress import FaultEvent, ProgressTracker

#: How an exhausted work unit is resolved.
ON_ERROR_MODES = ("raise", "degrade", "skip")

#: Sentinel distinguishing "attempt rescheduled" from terminal outcomes.
_RETRYING = object()


@dataclass(frozen=True)
class RetryPolicy:
    """One run's recovery budget for supervised dispatch.

    Attributes
    ----------
    max_attempts:
        Total attempts per work unit, the first included (1 = never
        retry).
    timeout:
        Seconds one attempt may run before it counts as a
        :class:`WorkerTimeout` (``None`` = no deadline).  Dispatched
        attempts are detected the moment the deadline lapses; with a
        timeout set, dispatch is throttled to ``n_jobs`` outstanding
        tasks so time spent queued behind other tasks never counts
        against a unit's deadline.  In-process (serial) attempts
        enforce the same budget cooperatively — the chunk loops check
        the attempt deadline at every chunk boundary
        (:func:`check_deadline`), so a lapsed attempt times out
        between chunks; a comparison stuck *inside* one chunk still
        cannot be preempted.  The degraded re-execution runs
        deadline-free.
    backoff:
        Base delay in seconds before retry ``k`` (waits
        ``backoff * 2**(k-1)``); 0 retries immediately.
    """

    max_attempts: int = 1
    timeout: float | None = None
    backoff: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if self.backoff < 0:
            raise ValueError("backoff must be >= 0")

    @property
    def supervises(self) -> bool:
        """Whether this policy alone requires supervised execution."""
        return self.max_attempts > 1 or self.timeout is not None

    def delay(self, failed_attempt: int) -> float:
        """Seconds to wait before the attempt after *failed_attempt*."""
        if self.backoff <= 0:
            return 0.0
        return self.backoff * (2.0 ** (failed_attempt - 1))

    def deadline(self) -> float | None:
        """Monotonic deadline for an attempt starting now.

        ``None`` when the policy sets no timeout.  In-process attempt
        loops capture this once per attempt and hand it to the chunk
        loops, whose :func:`check_deadline` calls enforce it.
        """
        if self.timeout is None:
            return None
        return time.monotonic() + self.timeout


class ExecutionFault(Exception):
    """Base of the executor's structured error taxonomy.

    Attributes
    ----------
    partitions:
        Labels of every plan partition the faulting work unit touched.
    sources:
        Union of the partitions' multi-source tags (empty for
        single-relation plans).
    attempt:
        The attempt (1-based) that observed the fault.
    """

    #: Short taxonomy tag used in report summaries and fault events.
    kind = "fault"

    def __init__(
        self,
        message: str,
        *,
        partitions: Sequence[str] = (),
        sources: Sequence[str] = (),
        attempt: int = 1,
    ) -> None:
        super().__init__(message)
        self.partitions = tuple(partitions)
        self.sources = tuple(sources)
        self.attempt = attempt


class WorkerCrash(ExecutionFault):
    """A work unit's execution raised, or its worker process died."""

    kind = "crash"


class WorkerTimeout(ExecutionFault):
    """A dispatched work unit missed its per-attempt deadline."""

    kind = "timeout"


class DeadlineExceeded(Exception):
    """An in-process chunk loop observed its attempt deadline lapse.

    Control-flow signal, not part of the public fault taxonomy: raised
    by the cooperative :func:`check_deadline` checks inside the
    engine's chunk loops and converted to a :class:`WorkerTimeout` by
    :func:`run_supervised_inline`.
    """


def check_deadline(deadline: float | None) -> None:
    """Raise :class:`DeadlineExceeded` when *deadline* has lapsed.

    The in-process enforcement point: chunk loops call this at every
    chunk boundary with the deadline captured by
    :meth:`RetryPolicy.deadline` at attempt start (``None`` = no
    timeout configured, never raises).
    """
    if deadline is not None and time.monotonic() > deadline:
        raise DeadlineExceeded(
            "attempt deadline lapsed at a chunk boundary"
        )


class PartitionFailure(ExecutionFault):
    """Terminal: one partition could not be decided within the budget.

    Recorded in :attr:`ExecutionReport.failures
    <repro.matching.executor.progress.ExecutionReport.failures>` (and
    raised under ``on_error="raise"``, chained to the underlying
    fault).  ``partition`` names the single partition this failure is
    about; ``attempt`` counts the attempts consumed.
    """

    kind = "failure"

    def __init__(
        self,
        message: str,
        *,
        partition: str,
        sources: Sequence[str] = (),
        attempt: int = 1,
    ) -> None:
        super().__init__(
            message,
            partitions=(partition,),
            sources=sources,
            attempt=attempt,
        )
        self.partition = partition


def _partitions_context(partitions) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """(labels, merged source tags) of the partitions a task touches."""
    labels = tuple(partition.label for partition in partitions)
    sources: dict[str, None] = {}
    for partition in partitions:
        for tag in partition.sources or ():
            sources[tag] = None
    return labels, tuple(sources)


def _record_attempt(tracker: ProgressTracker, fault: ExecutionFault) -> None:
    if isinstance(fault, WorkerTimeout):
        tracker.report.worker_timeouts += 1
    else:
        tracker.report.worker_crashes += 1


def _record_retry(
    tracker: ProgressTracker, fault: ExecutionFault
) -> None:
    tracker.report.retried_dispatches += 1
    tracker.fault_event(
        FaultEvent(
            kind="retry",
            fault=fault.kind,
            partitions=fault.partitions,
            attempt=fault.attempt,
            error=str(fault),
        )
    )


def _record_degraded(
    tracker: ProgressTracker, fault: ExecutionFault
) -> None:
    tracker.report.degraded_tasks += 1
    tracker.fault_event(
        FaultEvent(
            kind="degraded",
            fault=fault.kind,
            partitions=fault.partitions,
            attempt=fault.attempt,
            error=str(fault),
        )
    )


def fail_partitions(
    tracker: ProgressTracker,
    partitions,
    fault: ExecutionFault,
    *,
    on_error: str,
) -> None:
    """Resolve exhausted *partitions* terminally: record, then raise/skip.

    Builds one :class:`PartitionFailure` per partition (deduplicated by
    label across tasks — a partition whose pairs were batched into
    several failed tasks is reported once), appends them to the run
    report, emits one ``"failed"`` event, and raises the first failure
    when *on_error* is ``"raise"``.
    """
    report = tracker.report
    seen = {failure.partition for failure in report.failures}
    failures = []
    for partition in partitions:
        if partition.label in seen:
            continue
        failures.append(
            PartitionFailure(
                f"partition {partition.label!r} failed after "
                f"{fault.attempt} attempt(s): {fault}",
                partition=partition.label,
                sources=partition.sources or (),
                attempt=fault.attempt,
            )
        )
    report.failures.extend(failures)
    if failures:
        tracker.fault_event(
            FaultEvent(
                kind="failed",
                fault=fault.kind,
                partitions=tuple(f.partition for f in failures),
                attempt=fault.attempt,
                error=str(fault),
            )
        )
    if on_error == "raise":
        raise (
            failures[0]
            if failures
            else PartitionFailure(
                str(fault),
                partition=fault.partitions[0] if fault.partitions else "?",
                sources=fault.sources,
                attempt=fault.attempt,
            )
        ) from fault


def run_supervised_inline(
    execute: Callable[[int], list],
    *,
    fallback: Callable[[], list],
    partitions,
    policy: RetryPolicy,
    on_error: str,
    tracker: ProgressTracker,
) -> list | None:
    """Drive one in-process work unit through the attempt budget.

    ``execute(attempt)`` runs the unit (consulting any installed fault
    hook); ``fallback()`` is the hook-free, deadline-free degraded
    re-execution.  Returns the unit's results, or ``None`` when it was
    skipped / failed terminally (already recorded; raises under
    ``on_error="raise"``).  Timeouts are enforced cooperatively:
    ``execute`` raises :class:`DeadlineExceeded` at a chunk boundary
    once ``policy.timeout`` lapses, classified here as a
    :class:`WorkerTimeout`; every other exception is a
    :class:`WorkerCrash`.
    """
    labels, sources = _partitions_context(partitions)
    attempt = 1
    while True:
        fault: ExecutionFault
        try:
            return execute(attempt)
        except PartitionFailure:
            raise
        except DeadlineExceeded as error:
            fault = WorkerTimeout(
                f"in-process execution exceeded its {policy.timeout}s "
                "deadline at a chunk boundary",
                partitions=labels,
                sources=sources,
                attempt=attempt,
            )
            fault.__cause__ = error
        except Exception as error:  # noqa: BLE001 — classified below
            fault = WorkerCrash(
                f"in-process execution raised {type(error).__name__}: "
                f"{error}",
                partitions=labels,
                sources=sources,
                attempt=attempt,
            )
            fault.__cause__ = error
        _record_attempt(tracker, fault)
        if attempt < policy.max_attempts:
            _record_retry(tracker, fault)
            delay = policy.delay(attempt)
            if delay > 0:
                time.sleep(delay)
            attempt += 1
            continue
        if on_error == "degrade":
            try:
                results = fallback()
            except Exception as degraded_error:  # noqa: BLE001
                fault = WorkerCrash(
                    "degraded in-process re-execution raised "
                    f"{type(degraded_error).__name__}: "
                    f"{degraded_error}",
                    partitions=labels,
                    sources=sources,
                    attempt=attempt,
                )
                fault.__cause__ = degraded_error
                fail_partitions(
                    tracker, partitions, fault, on_error=on_error
                )
                return None
            _record_degraded(tracker, fault)
            return results
        fail_partitions(tracker, partitions, fault, on_error=on_error)
        return None


@dataclass
class _Pending:
    """One outstanding dispatch attempt."""

    attempt: int
    deadline: float | None


class SupervisedDispatcher:
    """Retry/timeout supervision over one worker pool's dispatch queue.

    Submissions go through ``apply_async`` with completion callbacks
    feeding a result queue; the supervising (parent) thread waits on
    that queue with a wake-up at the earliest outstanding deadline, so
    a clean run costs one queue round trip per task and a hung or dead
    worker is detected the moment its deadline lapses — never by
    blocking forever on an ``imap`` slot.

    Parameters
    ----------
    policy / on_error:
        See :class:`RetryPolicy` and :data:`ON_ERROR_MODES`.
    tracker:
        The run's :class:`~repro.matching.executor.progress.ProgressTracker`.
    task_partitions:
        ``index -> Sequence[CandidatePartition]`` — the plan partitions
        task *index* touches (fault attribution).
    fallback:
        ``index -> results`` — hook-free in-process re-execution of
        task *index* (the ``"degrade"`` path).
    max_outstanding:
        Dispatch throttle used when a timeout is configured (normally
        ``n_jobs``); without a timeout every task is submitted up
        front, exactly like ``imap``.
    """

    def __init__(
        self,
        *,
        policy: RetryPolicy,
        on_error: str,
        tracker: ProgressTracker,
        task_partitions: Callable[[int], Sequence],
        fallback: Callable[[int], list],
        max_outstanding: int,
    ) -> None:
        if on_error not in ON_ERROR_MODES:
            raise ValueError(
                f"unknown on_error {on_error!r}; "
                f"expected one of {ON_ERROR_MODES}"
            )
        self._policy = policy
        self._on_error = on_error
        self._tracker = tracker
        self._task_partitions = task_partitions
        self._fallback = fallback
        self._max_outstanding = max(max_outstanding, 1)

    def run(
        self, pool, worker: Callable, tasks: Sequence
    ) -> Iterator[tuple[int, list | None]]:
        """Yield ``(task index, results | None)`` in completion order.

        ``None`` marks a task resolved by skip / degraded-failure; its
        partitions are recorded in the report's failures.  Raises
        :class:`PartitionFailure` under ``on_error="raise"``.
        """
        policy = self._policy
        results_queue: queue.Queue = queue.Queue()
        pending: dict[int, _Pending] = {}
        delayed: list[tuple[float, int, int]] = []  # (when, index, attempt)
        next_fresh = 0
        finished = 0
        limit = (
            len(tasks) if policy.timeout is None else self._max_outstanding
        )

        def submit(index: int, attempt: int) -> None:
            deadline = (
                None
                if policy.timeout is None
                else time.monotonic() + policy.timeout
            )
            pending[index] = _Pending(attempt, deadline)

            def succeeded(result, index=index, attempt=attempt):
                results_queue.put((index, attempt, result, None))

            def errored(error, index=index, attempt=attempt):
                results_queue.put((index, attempt, None, error))

            pool.apply_async(
                worker,
                ((attempt, tasks[index]),),
                callback=succeeded,
                error_callback=errored,
            )

        while finished < len(tasks):
            now = time.monotonic()
            while delayed and delayed[0][0] <= now:
                _, index, attempt = heapq.heappop(delayed)
                submit(index, attempt)
            while next_fresh < len(tasks) and len(pending) < limit:
                submit(next_fresh, 1)
                next_fresh += 1
            wake = min(
                (
                    entry.deadline
                    for entry in pending.values()
                    if entry.deadline is not None
                ),
                default=None,
            )
            if delayed and (wake is None or delayed[0][0] < wake):
                wake = delayed[0][0]
            try:
                item = results_queue.get(
                    timeout=(
                        None
                        if wake is None
                        else max(wake - time.monotonic(), 0.0)
                    )
                )
            except queue.Empty:
                # A deadline (or a backoff resubmission) came due.
                now = time.monotonic()
                overdue = [
                    index
                    for index, entry in pending.items()
                    if entry.deadline is not None and entry.deadline <= now
                ]
                for index in overdue:
                    attempt = pending.pop(index).attempt
                    fault = self._timeout_fault(index, attempt)
                    outcome = self._attempt_failed(index, fault, delayed)
                    if outcome is not _RETRYING:
                        finished += 1
                        yield index, outcome
                continue
            index, attempt, result, error = item
            entry = pending.get(index)
            if entry is None or entry.attempt != attempt:
                # Late result of an abandoned (timed-out) attempt: the
                # retry recomputes the same pure results; drop it.
                continue
            del pending[index]
            if error is None:
                finished += 1
                yield index, result
                continue
            fault = self._crash_fault(index, attempt, error)
            outcome = self._attempt_failed(index, fault, delayed)
            if outcome is not _RETRYING:
                finished += 1
                yield index, outcome

    # ------------------------------------------------------------------
    # Attempt resolution
    # ------------------------------------------------------------------

    def _timeout_fault(self, index: int, attempt: int) -> WorkerTimeout:
        labels, sources = _partitions_context(self._task_partitions(index))
        return WorkerTimeout(
            f"dispatch exceeded its {self._policy.timeout}s deadline "
            "(worker hung, or its process died and the task was lost)",
            partitions=labels,
            sources=sources,
            attempt=attempt,
        )

    def _crash_fault(
        self, index: int, attempt: int, error: BaseException
    ) -> WorkerCrash:
        labels, sources = _partitions_context(self._task_partitions(index))
        fault = WorkerCrash(
            f"worker raised {type(error).__name__}: {error}",
            partitions=labels,
            sources=sources,
            attempt=attempt,
        )
        fault.__cause__ = error
        return fault

    def _attempt_failed(
        self,
        index: int,
        fault: ExecutionFault,
        delayed: list[tuple[float, int, int]],
    ):
        """Retry, degrade, skip or raise one failed dispatch attempt."""
        tracker = self._tracker
        _record_attempt(tracker, fault)
        policy = self._policy
        if fault.attempt < policy.max_attempts:
            _record_retry(tracker, fault)
            heapq.heappush(
                delayed,
                (
                    time.monotonic() + policy.delay(fault.attempt),
                    index,
                    fault.attempt + 1,
                ),
            )
            return _RETRYING
        partitions = self._task_partitions(index)
        if self._on_error == "degrade":
            try:
                results = self._fallback(index)
            except Exception as error:  # noqa: BLE001 — terminal below
                terminal = WorkerCrash(
                    "degraded in-process re-execution raised "
                    f"{type(error).__name__}: {error}",
                    partitions=fault.partitions,
                    sources=fault.sources,
                    attempt=fault.attempt,
                )
                terminal.__cause__ = error
                fail_partitions(
                    tracker, partitions, terminal, on_error=self._on_error
                )
                return None
            _record_degraded(tracker, fault)
            return results
        fail_partitions(tracker, partitions, fault, on_error=self._on_error)
        return None


__all__ = [
    "ON_ERROR_MODES",
    "DeadlineExceeded",
    "ExecutionFault",
    "PartitionFailure",
    "RetryPolicy",
    "SupervisedDispatcher",
    "WorkerCrash",
    "WorkerTimeout",
    "check_deadline",
    "fail_partitions",
    "run_supervised_inline",
]
