"""Detection results: what execution hands back to verification.

:class:`DetectionResult` is the pipeline's output container (one per
run, or one per partition under streaming).  It lives in the executor
package because every execution path produces it, but it is re-exported
from :mod:`repro.matching` and :mod:`repro.matching.pipeline` — caller
imports are unaffected by the executor extraction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.matching.clustering import ClusteringResult, cluster_matches
from repro.matching.decision.base import MatchStatus
from repro.matching.engine import XTupleDecision
from repro.reduction.plan import CandidatePartition, ordered_pair as _ordered


@dataclass(frozen=True)
class DetectionResult:
    """Everything duplicate detection produced, ready for verification.

    Attributes
    ----------
    decisions:
        One :class:`XTupleDecision` per compared candidate pair.
    compared_pairs:
        The candidate pairs that were actually compared (normalized so
        ``left <= right``), i.e. the reduced search space.  Empty when
        detection ran with ``keep_compared_pairs=False``.
    relation_size:
        Number of tuples in the searched relation (for reduction-ratio
        computations).
    partition_label:
        For per-partition slices yielded by ``stream=True``: the label
        of the :class:`~repro.reduction.plan.CandidatePartition` this
        slice covers.  ``None`` for whole-run results.
    """

    decisions: tuple[XTupleDecision, ...]
    compared_pairs: frozenset[tuple[str, str]]
    relation_size: int
    partition_label: str | None = None

    def pairs_with_status(
        self, status: MatchStatus
    ) -> tuple[tuple[str, str], ...]:
        """All compared pairs that received the given matching value."""
        return tuple(
            _ordered(d.left_id, d.right_id)
            for d in self.decisions
            if d.status is status
        )

    @property
    def matches(self) -> tuple[tuple[str, str], ...]:
        """The set M."""
        return self.pairs_with_status(MatchStatus.MATCH)

    @property
    def possible_matches(self) -> tuple[tuple[str, str], ...]:
        """The set P (clerical review)."""
        return self.pairs_with_status(MatchStatus.POSSIBLE)

    @property
    def unmatches(self) -> tuple[tuple[str, str], ...]:
        """The set U."""
        return self.pairs_with_status(MatchStatus.UNMATCH)

    def clusters(self, *, include_possible: bool = False) -> ClusteringResult:
        """Transitive closure of the decisions into duplicate clusters.

        Falls back to the decisions' own pair set when
        ``compared_pairs`` was dropped (``keep_compared_pairs=False``).
        """
        ids: set[str] = set()
        for left, right in self.compared_pairs:
            ids.add(left)
            ids.add(right)
        for decision in self.decisions:
            ids.add(decision.left_id)
            ids.add(decision.right_id)
        return cluster_matches(
            sorted(ids),
            [(d.left_id, d.right_id, d.status) for d in self.decisions],
            include_possible=include_possible,
        )


def slice_result(
    partition: CandidatePartition,
    decisions: tuple[XTupleDecision, ...],
    relation_size: int,
    keep_compared_pairs: bool,
) -> DetectionResult:
    """One partition's share of a run, as a labeled result slice."""
    return DetectionResult(
        decisions=decisions,
        compared_pairs=(
            frozenset(partition.pairs)
            if keep_compared_pairs
            else frozenset()
        ),
        relation_size=relation_size,
        partition_label=partition.label,
    )


__all__ = ["DetectionResult", "slice_result"]
