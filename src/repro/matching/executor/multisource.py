"""Multi-source planning: the paper's consolidation scenario at scale.

The headline workload of the paper is integrating *autonomous
probabilistic sources* — ℛ34 = ℛ3 ∪ ℛ4 (Section II) — and the seed
pipeline handled it by materializing that union in memory.  This module
plans source pairs without the copy:

* :func:`plan_sources` runs the configured reducer's planner over a
  :class:`~repro.pdb.storage.MultiSourceStore` *view* of the sources
  (iteration order = union order, so the plan — and therefore every
  decision — is bitwise identical to planning the materialized union)
  and tags each partition with the sources its members come from.
  Tags are computed from the view's id → source map alone; no tuple is
  decoded, so two spilled stores plan without either being loaded.
* :func:`cross_source_plan` restricts a tagged plan to the
  consolidation question proper — which records of source A duplicate
  records of source B — by *pruning* every partition whose tag names a
  single source (for key-structured reducers that is exactly a key
  range the other source never reaches: a block key with members from
  one source, a sort-order span inside one source's key range) and
  filtering mixed partitions to their cross-source pairs.  The
  surviving pair sequence is a subsequence of the union plan's, so
  cross-only decisions equal the union run's decisions filtered to
  cross pairs.

>>> from repro.pdb.relations import XRelation
>>> from repro.pdb.storage import MultiSourceStore
>>> from repro.pdb.xtuples import TupleAlternative, XTuple
>>> from repro.reduction import CertainKeyBlocking, SubstringKey
>>> def rel(name, *rows):
...     return XRelation(name, ("name",), [
...         XTuple(t, (TupleAlternative({"name": n}, 1.0),))
...         for t, n in rows])
>>> view = MultiSourceStore([
...     rel("R1", ("a1", "anna"), ("a2", "bob")),
...     rel("R2", ("b1", "anne"), ("b2", "bert"))])
>>> plan = plan_sources(CertainKeyBlocking(SubstringKey([("name", 1)])), view)
>>> [(p.label, p.sources, p.pairs) for p in plan]
[('block:a', ('R1', 'R2'), (('a1', 'b1'),)), ('block:b', ('R1', 'R2'), (('a2', 'b2'),))]
>>> cross = cross_source_plan(plan, view)
>>> list(cross.pairs()) == list(plan.pairs())  # all pairs were cross
True
"""

from __future__ import annotations

from dataclasses import replace

from repro.pdb.relations import XRelation
from repro.pdb.storage import MultiSourceStore, XTupleStore
from repro.pdb.storage.stats import relation_statistics
from repro.reduction.keys import SubstringKey
from repro.reduction.plan import (
    CandidatePartition,
    CandidatePlan,
    members_of_pairs,
    plan_candidates,
    store_statistics,
)


def source_tagged(view) -> bool:
    """Whether *view* can tag partitions with member sources.

    Duck-typed on the ``source_of`` / ``source_names`` surface so that
    both :class:`~repro.pdb.storage.MultiSourceStore` and overlay views
    that forward it (a :class:`~repro.pdb.storage.SessionStore` whose
    appended delta forms one extra source) plan source-tagged.
    """
    return callable(getattr(view, "source_of", None)) and (
        getattr(view, "source_names", None) is not None
    )


def partition_sources(
    partition: CandidatePartition, view: MultiSourceStore
) -> tuple[str, ...]:
    """Source tags of a partition's members, in first-occurrence order.

    Metadata-only: consults the view's id → source map, never a tuple.
    """
    seen: dict[str, None] = {}
    for member in partition.members:
        seen[view.source_of(member)] = None
    return tuple(seen)


def tag_plan_sources(
    plan: CandidatePlan, view: MultiSourceStore
) -> CandidatePlan:
    """The same plan with every partition source-tagged."""
    return replace(
        plan,
        partitions=tuple(
            replace(partition, sources=partition_sources(partition, view))
            for partition in plan.partitions
        ),
        source_names=view.source_names,
    )


def plan_sources(reducer, view: XTupleStore) -> CandidatePlan:
    """Plan a (possibly multi-source) store, tagging partition sources.

    For a :class:`~repro.pdb.storage.MultiSourceStore` the reducer
    plans the union *view* — the view's iteration order is the union's,
    so the plan equals the materialized-union plan partition for
    partition — and every partition is tagged with the sources its
    members come from.  Plain single stores plan as usual, untagged.
    """
    plan = plan_candidates(reducer, view)
    if isinstance(view, MultiSourceStore) or source_tagged(view):
        plan = tag_plan_sources(plan, view)
    return plan


def _prefix_successor(prefix: str) -> str | None:
    """Smallest string above every extension of *prefix* (``None`` = ∞)."""
    for index in range(len(prefix) - 1, -1, -1):
        code = ord(prefix[index])
        if code < 0x10FFFF:
            return prefix[:index] + chr(code + 1)
    return None


def _ranges_may_share_key(
    first: tuple[str, str] | None,
    second: tuple[str, str] | None,
    *,
    whole_key: bool,
) -> bool:
    """Whether two first-part zones can produce one equal block key.

    With *whole_key* (single-part keys) equal keys force equal first
    parts, so the closed intervals must intersect.  Multi-part keys
    concatenate pieces: equal keys only force one first part to prefix
    the other, so each zone is widened to ``[lo, successor(hi))`` — the
    interval covering every string extending a part in the zone —
    before intersecting.  ``None`` means unbounded: never prune.
    """
    if first is None or second is None:
        return True
    if whole_key:
        return first[0] <= second[1] and second[0] <= first[1]
    first_end = _prefix_successor(first[1])
    second_end = _prefix_successor(second[1])
    return (second_end is None or first[0] < second_end) and (
        first_end is None or second[0] < first_end
    )


def source_key_ranges(
    view: MultiSourceStore, key: SubstringKey
) -> list[tuple[str, str] | None]:
    """First-key-part zone per source, from statistics alone.

    Columnar sources answer from their spill-time zone maps without
    touching tuple data; in-memory relations stream their resident
    values once; row-spilled stores (which would have to decode every
    segment) report ``None`` — unbounded, never pruned.
    """
    attribute, length = key.parts[0]
    ranges: list[tuple[str, str] | None] = []
    for store in view.stores:
        statistics = store_statistics(store)
        if statistics is None and isinstance(store, XRelation):
            statistics = relation_statistics(store)
        if statistics is None:
            ranges.append(None)
            continue
        ranges.append(statistics.key_range(attribute, length))
    return ranges


def prune_disjoint_sources(
    view, reducer
) -> tuple[XTupleStore, tuple[str, ...]]:
    """Drop sources whose key zone overlaps *no* other source's.

    The plan-time embodiment of the paper's search-space reduction
    (Section V) applied *across sources*: an equality-blocking reducer
    (one exposing ``prune_key``) can only pair two sources inside a
    shared block key, so a source whose first-key-part zone — read
    from store statistics, no tuple fetched — is disjoint from every
    other source's cannot contribute a cross-source pair.  Its blocks
    are all single-source, which :func:`cross_source_plan` would drop
    *after* planning; dropping the source first means its tuples are
    never scanned at all.

    Returns ``(view, pruned source names)``.  The view is returned
    unchanged — no names pruned — when it is not a multi-source view,
    the reducer exposes no ``prune_key``, the key is not a substring
    key (derived transforms break prefix monotonicity), or statistics
    cannot prove any source disjoint.  When every source is pairwise
    disjoint one source is kept so downstream planning still has a
    view; its plan's partitions are all single-source and the cross
    filter empties them.
    """
    if not isinstance(view, MultiSourceStore) or len(view.stores) < 2:
        return view, ()
    key = getattr(reducer, "prune_key", None)
    if not isinstance(key, SubstringKey):
        return view, ()
    whole_key = len(key.parts) == 1
    ranges = source_key_ranges(view, key)
    kept = [
        index
        for index in range(len(ranges))
        if any(
            other != index
            and _ranges_may_share_key(
                ranges[index], ranges[other], whole_key=whole_key
            )
            for other in range(len(ranges))
        )
    ]
    if len(kept) == len(ranges):
        return view, ()
    if not kept:
        kept = [0]
    pruned = tuple(
        view.source_names[index]
        for index in range(len(ranges))
        if index not in set(kept)
    )
    survivor = MultiSourceStore(
        [view.stores[index] for index in kept], name=view.name
    )
    return survivor, pruned


def cross_source_plan(
    plan: CandidatePlan, view: MultiSourceStore
) -> CandidatePlan:
    """Restrict a tagged plan to cross-source candidate pairs.

    Partitions tagged with a single source are pruned outright — their
    key range exists in only one source, so they cannot contribute a
    cross-source pair and none of their tuples need touching.  Mixed
    partitions keep the (plan-ordered) subsequence of their pairs whose
    endpoints come from different sources; partitions left empty are
    dropped like the plan builder drops empty partitions.
    """
    kept: list[CandidatePartition] = []
    for partition in plan.partitions:
        sources = partition.sources
        if sources is None:
            raise ValueError(
                "cross_source_plan needs a source-tagged plan; build it "
                "with plan_sources over a MultiSourceStore"
            )
        if len(sources) < 2:
            continue
        cross = tuple(
            pair
            for pair in partition.pairs
            if view.source_of(pair[0]) != view.source_of(pair[1])
        )
        if not cross:
            continue
        if len(cross) == len(partition.pairs):
            kept.append(partition)
            continue
        members = members_of_pairs(cross)
        kept.append(
            CandidatePartition(
                label=partition.label,
                pairs=cross,
                members=members,
                sources=tuple(
                    dict.fromkeys(view.source_of(m) for m in members)
                ),
            )
        )
    return replace(
        plan,
        partitions=tuple(kept),
        source=f"{plan.source} [cross-source]",
    )


__all__ = [
    "cross_source_plan",
    "partition_sources",
    "plan_sources",
    "prune_disjoint_sources",
    "source_key_ranges",
    "source_tagged",
    "tag_plan_sources",
]
