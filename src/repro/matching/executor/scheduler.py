"""The execution engine: schedule and decide a candidate plan.

Everything between *planning* (:func:`repro.reduction.plan.plan_candidates`)
and the per-pair decision (:meth:`XTupleDecisionProcedure.decide
<repro.matching.engine.XTupleDecisionProcedure.decide>`) lives here.
:class:`ExecutionEngine` consumes a
:class:`~repro.reduction.plan.CandidatePlan` over any
:class:`~repro.pdb.storage.XTupleStore` and yields one
:class:`~repro.matching.executor.results.DetectionResult` slice per
partition, in plan order, bitwise identical to the serial seed pipeline
under every mode:

``scheduling="partitioned"``
    Whole partitions are assigned to workers in plan order
    (consecutive small partitions coalesced into chunk-sized dispatch
    batches); before forking, the matcher's shared similarity caches
    are pre-warmed from the per-partition vocabulary and frozen
    read-only, so every worker shares the parent's table copy-on-write.

``scheduling="stealing"``
    Skew-aware work stealing.  Partitions exceeding the ``split_pairs``
    cost budget are subdivided — by the reducer's sub-key
    ``split_partition`` hook (:class:`~repro.reduction.plan.SplittableReducer`)
    when available, by contiguous row-banding otherwise — and the
    resulting work units are dispatched *largest first* through the
    pool's shared task queue, so an idle worker always steals the
    biggest remaining unit and one giant block no longer serializes the
    run.  Sub-key groups keep each unit's member working set coherent,
    so workers decide them with cold caches without duplicating
    similarity work.  The parent reassembles each partition's decisions
    into the partition's original pair order before yielding, so
    results are independent of stealing order.

Both modes equal the serial path decision for decision: a pair's
decision is a pure function of its two x-tuples and the configured
procedure (similarity caches memoize deterministic values), so
execution order can never change results — only the emission order
could, and reassembly pins that to plan order.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from repro.matching.engine import XTupleDecision, XTupleDecisionProcedure
from repro.pdb.storage.base import fetch_tuples
from repro.pdb.values import NULL, PatternValue
from repro.matching.executor.faults import (
    ON_ERROR_MODES,
    RetryPolicy,
    SupervisedDispatcher,
    check_deadline,
    run_supervised_inline,
)
from repro.matching.executor.progress import (
    ExecutionReport,
    FaultObserver,
    ProgressObserver,
    ProgressTracker,
)
from repro.matching.executor.results import DetectionResult, slice_result
from repro.matching.executor.workers import (
    decide_batch,
    decide_pairs,
    decide_supervised,
    fault_hook,
    fork_context,
    init_worker,
)
from repro.reduction.plan import (
    CandidatePartition,
    CandidatePlan,
    band_partition,
    partition_value_pairs,
    partition_vocabulary,
)

#: Default number of candidate pairs decided per batch.  Large enough to
#: amortize dispatch overhead (and IPC when fanning out), small enough
#: that per-chunk result lists never hold more than a sliver of a run.
DEFAULT_CHUNK_SIZE = 1024

#: Cost budget (candidate pairs) above which the stealing scheduler
#: subdivides a partition.  Matches the window-family planning target:
#: a unit this size amortizes dispatch but cannot monopolize a worker.
DEFAULT_SPLIT_PAIRS = 2048

#: Total pairwise-similarity budget for cache pre-warming, across all
#: partitions and attributes of one detection run.  Blocking plans warm
#: completely well below this; the bound exists so an unstructured plan
#: (full comparison) cannot spend the whole run warming in the parent.
PREWARM_PAIR_BUDGET = 200_000

#: Minimum structural shrinkage required to take the pair-aware warm
#: path.  Enumerating a partition's candidate tuple pairs costs work
#: proportional to the pair count; it only beats the legacy
#: vocabulary-square warm when the pair set is materially smaller than
#: the member square.  Window-family plans (pairs ≈ (w−1)·|span|) pass
#: easily; dense blocking partitions (pairs ≈ |block|²/2) fail and keep
#: the cheaper square warm, which still batches through
#: ``warm → warm_pairs → batch_similarities``.
PAIR_AWARE_ADVANTAGE = 2

#: Scheduling modes the engine itself implements.  The legacy pre-plan
#: "striped" fan-out lives in the detector facade.
ENGINE_SCHEDULING_MODES = ("partitioned", "stealing")

#: Cost models for the stealing scheduler's split/dispatch decisions.
#: ``"pairs"`` (default) costs a unit by its candidate-pair count;
#: ``"weighted"`` additionally weighs each partition by its members'
#: alternative counts and string lengths, so fat-tuple partitions split
#: earlier and dispatch first even when their pair counts are modest.
SPLIT_COST_MODELS = ("pairs", "weighted")

#: Members sampled per partition when estimating a weighted cost —
#: bounds the scheduling-time fetch work regardless of partition size.
COST_SAMPLE_MEMBERS = 64


def estimate_partition_weight(
    relation,
    partition: CandidatePartition,
    *,
    sample: int = COST_SAMPLE_MEMBERS,
) -> float:
    """Relative per-pair decision cost of one partition's tuples.

    A pair's decision work scales with the alternative combinations it
    compares (``alternatives²``) times the length of the strings each
    comparison edits — pair counts alone treat a partition of 1-line
    certain tuples and one of 8-alternative long-string tuples as equal
    work.  The estimate samples up to *sample* members (one bounded
    ``fetch``, served from resident objects or the store's page cache)
    and returns ``mean_alternatives² × mean plain-outcome length``; the
    caller normalizes across the plan, so only *relative* magnitudes
    matter.
    """
    members = partition.members[:sample]
    if not members:
        return 1.0
    working_set = fetch_tuples(relation, members)
    alternatives = 0
    plain_bytes = 0
    for xtuple in working_set.values():
        alternatives += len(xtuple.alternatives)
        for alternative in xtuple.alternatives:
            for attribute in alternative.attributes:
                for outcome, _probability in alternative.value(
                    attribute
                ).items():
                    if outcome is NULL or isinstance(outcome, PatternValue):
                        continue
                    plain_bytes += len(str(outcome))
    mean_alternatives = alternatives / len(members)
    mean_bytes = plain_bytes / max(1, alternatives)
    return (mean_alternatives**2) * max(1.0, mean_bytes)


@dataclass(frozen=True)
class ExecutionSettings:
    """One detection run's execution knobs (validated on construction).

    Parameters mirror :meth:`DuplicateDetector.detect
    <repro.matching.pipeline.DuplicateDetector.detect>`; ``split_pairs``
    is the stealing scheduler's cost budget.
    """

    chunk_size: int = DEFAULT_CHUNK_SIZE
    n_jobs: int = 1
    keep_derivations: bool = True
    keep_compared_pairs: bool = True
    scheduling: str = "partitioned"
    prewarm: bool | None = None
    split_pairs: int = DEFAULT_SPLIT_PAIRS
    #: Parent-side warm budget (pairwise similarity evaluations).  A
    #: partition whose vocabulary table exceeds what remains of the
    #: budget leaves the warm *incomplete*: the caches are then not
    #: frozen around the fork and every worker re-learns its share —
    #: the skew pathology the stealing scheduler avoids (see
    #: ``benchmarks/test_bench_scheduler.py``).
    prewarm_budget: int = PREWARM_PAIR_BUDGET
    #: Comparison-kernel backend the run's procedure was configured
    #: with (``"auto"`` when the caller did not resolve one).  Purely
    #: informational at the engine level — the detector facade resolves
    #: the selector and clones the procedure before constructing the
    #: engine — but validated here so a typo fails loudly.
    kernel_backend: str = "auto"
    #: Recovery budget for supervised dispatch (attempts / per-dispatch
    #: timeout / backoff); the default policy never retries and sets no
    #: deadline, which — together with ``on_error="raise"`` — keeps the
    #: unsupervised zero-overhead execution paths.
    retry: RetryPolicy = RetryPolicy()
    #: How a work unit that exhausts the retry budget is resolved:
    #: ``"raise"`` aborts with a ``PartitionFailure``, ``"degrade"``
    #: re-executes in-process (bitwise-identical, merely slower),
    #: ``"skip"`` drops the unit's partitions and records the failures
    #: in ``ExecutionReport.failures``.
    on_error: str = "raise"
    #: Stealing-mode cost model: ``"pairs"`` costs work units by pair
    #: count alone; ``"weighted"`` weighs each partition by sampled
    #: alternative counts and string lengths
    #: (:func:`estimate_partition_weight`), so a partition of fat
    #: tuples splits at a lower pair count and its units dispatch
    #: earlier.  Scheduling-only: reassembly pins results to plan
    #: order, so decisions are bitwise identical under either model.
    split_cost_model: str = "pairs"
    #: Retained-cache mode (incremental sessions): the caller keeps the
    #: matcher's similarity caches warm *across* runs, so the engine
    #: must not spend the run re-prewarming them — ``should_prewarm``
    #: resolves to False — but still freezes them read-only around a
    #: fork (restoring afterwards) so workers share the retained tables
    #: copy-on-write exactly like a freshly warmed run would.
    retain_caches: bool = False

    def __post_init__(self) -> None:
        if self.chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if self.n_jobs < 1:
            raise ValueError("n_jobs must be at least 1 (or None)")
        if self.scheduling not in ENGINE_SCHEDULING_MODES:
            raise ValueError(
                f"unknown engine scheduling {self.scheduling!r}; "
                f"expected one of {ENGINE_SCHEDULING_MODES}"
            )
        if self.split_pairs <= 0:
            raise ValueError("split_pairs must be positive")
        if self.prewarm_budget < 0:
            raise ValueError("prewarm_budget must be >= 0")
        if self.kernel_backend != "auto":
            # Raises ValueError for unregistered names; availability is
            # checked at resolution time, not here.
            from repro.similarity.backends.base import get_backend

            get_backend(self.kernel_backend)
        if self.split_cost_model not in SPLIT_COST_MODELS:
            raise ValueError(
                f"unknown split_cost_model {self.split_cost_model!r}; "
                f"expected one of {SPLIT_COST_MODELS}"
            )
        if self.on_error not in ON_ERROR_MODES:
            raise ValueError(
                f"unknown on_error {self.on_error!r}; "
                f"expected one of {ON_ERROR_MODES}"
            )

    @property
    def supervised(self) -> bool:
        """Whether this run needs the supervised dispatch machinery.

        False for the defaults (one attempt, no timeout, raise), so
        existing runs keep the unsupervised code paths — raw exceptions
        propagate unchanged and the clean path pays nothing.
        """
        return self.retry.supervises or self.on_error != "raise"

    @property
    def should_prewarm(self) -> bool:
        """Resolved pre-warm default.

        Partitioned scheduling warms exactly when forking; stealing
        defaults to *not* warming — its sub-key units keep worker
        working sets coherent, so parent-side warming would serialize
        similarity work the workers can compute in parallel.  Retained-
        cache runs never re-prewarm: the session already holds the warm
        tables.
        """
        if self.retain_caches:
            return False
        if self.prewarm is not None:
            return self.prewarm
        return self.scheduling == "partitioned" and self.n_jobs > 1


def prewarm_plan(
    matcher,
    relation,
    plan: CandidatePlan,
    *,
    budget: int = PREWARM_PAIR_BUDGET,
) -> tuple[int, bool]:
    """Warm the matcher's caches from every partition's candidate pairs.

    **Pair-aware**: each partition contributes only the attribute-value
    combinations its candidate tuple pairs can actually compare
    (:func:`~repro.reduction.plan.partition_value_pairs`), not the full
    pairwise square of its vocabulary — window-family plans over-warm
    by roughly ``|span| / (2·(w−1))`` under the square.  The collected
    batches are scored through
    :meth:`~repro.matching.comparison.AttributeMatcher.warm_pairs`,
    which hands whole batches to the kernel backend's vectorized scorer
    when one is configured (encode once, score in bulk) and loops per
    pair otherwise.

    Pair-awareness is per partition, not per run: enumerating candidate
    tuple pairs is itself O(pairs), so a partition only takes the
    pair-aware path when its pair count promises at least
    :data:`PAIR_AWARE_ADVANTAGE`-fold shrinkage under its member square.
    Dense blocking partitions — where the candidate set *is* roughly
    the square — warm from the vocabulary instead, paying nothing for
    an enumeration that could not shrink anything.

    Returns ``(entries stored, complete)`` where *complete* means every
    partition's candidate combinations fit the budget — the
    precondition for freezing the caches read-only around a fork.
    Matchers without the pair-aware hook fall back to the legacy
    vocabulary-square warm.
    """
    if not matcher.cache_stats():
        return 0, False
    pair_aware = callable(getattr(matcher, "warm_pairs", None))
    total_warmed = 0
    complete = True
    remaining = budget
    for partition in plan:
        if remaining <= 0:
            complete = False
            break
        members = len(partition.members)
        member_square = members * (members - 1) // 2
        if (
            pair_aware
            and len(partition.pairs) * PAIR_AWARE_ADVANTAGE <= member_square
        ):
            value_pairs, truncated = partition_value_pairs(
                relation, partition, limit=remaining + 1
            )
            warmed, examined, partition_complete = matcher.warm_pairs(
                value_pairs, budget=remaining
            )
            partition_complete = partition_complete and not truncated
        else:
            vocabulary = partition_vocabulary(relation, partition)
            warmed, examined, partition_complete = matcher.warm(
                vocabulary, budget=remaining
            )
        total_warmed += warmed
        remaining -= max(examined, 1)
        complete = complete and partition_complete
    return total_warmed, complete


def subdivide_partition(
    splitter,
    relation,
    partition: CandidatePartition,
    *,
    max_pairs: int,
    report: ExecutionReport | None = None,
) -> list[CandidatePartition]:
    """Exact subdivision of one oversized partition into work units.

    Prefers the reducer's sub-key hook
    (:class:`~repro.reduction.plan.SplittableReducer`), validating that
    the returned sub-partitions cover the partition's pairs exactly
    once; any sub-key group still exceeding the budget — and the whole
    partition when no hook applies — is banded contiguously.
    """
    subs: list[CandidatePartition] | None = None
    split_hook = getattr(splitter, "split_partition", None)
    if callable(split_hook):
        raw = split_hook(relation, partition, max_pairs=max_pairs)
        if raw is not None:
            subs = list(raw)
            _check_exact_cover(partition, subs)
            if report is not None and len(subs) > 1:
                report.subkey_split_partitions += 1
    if subs is None:
        subs = [partition]
    units: list[CandidatePartition] = []
    banded = False
    for sub in subs:
        if len(sub) > max_pairs:
            pieces = band_partition(sub, max_pairs)
            banded = banded or len(pieces) > 1
            units.extend(pieces)
        else:
            units.append(sub)
    if report is not None:
        report.oversized_partitions += 1
        if banded:
            report.banded_partitions += 1
    return units


def _check_exact_cover(
    partition: CandidatePartition, subs: Sequence[CandidatePartition]
) -> None:
    total = sum(len(sub) for sub in subs)
    covered = {pair for sub in subs for pair in sub.pairs}
    if total != len(partition.pairs) or covered != set(partition.pairs):
        raise ValueError(
            f"split_partition produced an inexact cover of "
            f"{partition.label!r}: {total} pairs across {len(subs)} "
            f"sub-partitions covering {len(covered)} distinct of "
            f"{len(partition.pairs)} original pairs"
        )


class ExecutionEngine:
    """Schedules and decides one candidate plan.

    Parameters
    ----------
    procedure:
        The configured Figure-6 decision procedure (possibly a
        floor-pruned clone).
    settings:
        Execution knobs; see :class:`ExecutionSettings`.
    splitter:
        Optional provider of the ``split_partition`` sub-key hook —
        normally the detector's reducer.  Only consulted under stealing
        scheduling for partitions over the cost budget.
    observer:
        Optional per-partition progress callback
        (:data:`~repro.matching.executor.progress.ProgressObserver`).
    fault_observer:
        Optional recovery-action callback
        (:data:`~repro.matching.executor.progress.FaultObserver`),
        called on every retry, degradation and terminal failure of a
        supervised run.
    """

    def __init__(
        self,
        procedure: XTupleDecisionProcedure,
        settings: ExecutionSettings | None = None,
        *,
        splitter=None,
        observer: ProgressObserver | None = None,
        fault_observer: FaultObserver | None = None,
    ) -> None:
        self._procedure = procedure
        self._settings = settings if settings is not None else ExecutionSettings()
        self._splitter = splitter
        self.report = ExecutionReport()
        self._tracker = ProgressTracker(self.report, observer, fault_observer)

    @property
    def settings(self) -> ExecutionSettings:
        """The engine's execution knobs."""
        return self._settings

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def execute(
        self, relation, plan: CandidatePlan
    ) -> Iterator[DetectionResult]:
        """Yield one result slice per partition, in plan order."""
        settings = self._settings
        self._tracker.start(
            plan, scheduling=settings.scheduling, n_jobs=settings.n_jobs
        )
        self.report.kernel_backend = settings.kernel_backend
        matcher = self._procedure.matcher
        newly_frozen: list = []
        if settings.should_prewarm:
            warmed, complete = prewarm_plan(
                matcher, relation, plan, budget=settings.prewarm_budget
            )
            self.report.prewarmed_entries = warmed
            if complete and settings.n_jobs > 1:
                newly_frozen = matcher.freeze_caches()
                self.report.caches_frozen = True
        elif settings.retain_caches and settings.n_jobs > 1:
            # Retained-cache session: tables were warmed by earlier runs
            # and live across calls — freeze them read-only around the
            # fork so workers share them copy-on-write, thaw after.
            newly_frozen = matcher.freeze_caches()
            self.report.caches_frozen = bool(newly_frozen)
        try:
            supervised = settings.supervised
            if settings.scheduling == "stealing":
                yield from self._execute_stealing(relation, plan)
            elif settings.n_jobs == 1:
                if supervised:
                    yield from self._execute_serial_supervised(
                        relation, plan
                    )
                else:
                    yield from self._execute_serial(relation, plan)
            elif supervised:
                yield from self._execute_partitioned_supervised(
                    relation, plan
                )
            else:
                yield from self._execute_partitioned(relation, plan)
        finally:
            # Restore only the freezes this run established; caches the
            # caller froze beforehand stay frozen.
            for cache in newly_frozen:
                cache.thaw()

    # ------------------------------------------------------------------
    # Partitioned execution (plan order, whole partitions per worker)
    # ------------------------------------------------------------------

    def _execute_serial(
        self, relation, plan: CandidatePlan
    ) -> Iterator[DetectionResult]:
        settings = self._settings
        size = plan.relation_size
        for partition in plan:
            decisions = tuple(self._decide_partition(relation, partition))
            yield slice_result(
                partition,
                decisions,
                size,
                settings.keep_compared_pairs,
            )
            self._tracker.slice_done(partition, decisions)

    def _decide_partition(
        self,
        relation,
        partition: CandidatePartition,
        deadline: float | None = None,
    ) -> list[XTupleDecision]:
        """Decide one whole partition in-process, chunk by chunk.

        Loads the working set chunk by chunk, exactly like the parallel
        dispatch path: residency stays bounded by chunk_size even when
        a plan degenerates to one partition spanning the whole relation
        (full comparison, legacy pairs()-only reducers).  With a
        *deadline* (supervised serial attempts), every chunk boundary
        checks it — a lapsed attempt raises
        :class:`~repro.matching.executor.faults.DeadlineExceeded` for
        the supervisor to classify as a timeout.  Also the hook-free,
        deadline-free degraded re-execution of a supervised run.
        """
        settings = self._settings
        decisions: list[XTupleDecision] = []
        pairs = partition.pairs
        for start in range(0, len(pairs), settings.chunk_size):
            check_deadline(deadline)
            chunk = pairs[start : start + settings.chunk_size]
            decisions.extend(
                decide_pairs(
                    self._procedure,
                    relation,
                    chunk,
                    settings.keep_derivations,
                )
            )
        return decisions

    def _execute_serial_supervised(
        self, relation, plan: CandidatePlan
    ) -> Iterator[DetectionResult]:
        """Serial execution under the attempt budget, one unit per
        partition.

        Each attempt captures its deadline from the retry policy before
        running, and the partition's chunk loop checks it at every
        chunk boundary — a lapsed attempt surfaces as a
        :class:`~repro.matching.executor.faults.WorkerTimeout` and
        consumes retry budget like any dispatched timeout.  The
        fault-injection hook is consulted once per attempt with the
        partition's pairs (inside the deadline, so a hook that stalls
        trips the timeout), and the degraded fallback is hook- and
        deadline-free.
        """
        settings = self._settings
        size = plan.relation_size
        for partition in plan:

            def attempt_partition(attempt, partition=partition):
                deadline = settings.retry.deadline()
                hook = fault_hook()
                if hook is not None:
                    hook(attempt, list(partition.pairs))
                return self._decide_partition(
                    relation, partition, deadline=deadline
                )

            decisions = run_supervised_inline(
                attempt_partition,
                fallback=lambda partition=partition: self._decide_partition(
                    relation, partition
                ),
                partitions=(partition,),
                policy=settings.retry,
                on_error=settings.on_error,
                tracker=self._tracker,
            )
            if decisions is None:
                continue
            decisions = tuple(decisions)
            yield slice_result(
                partition,
                decisions,
                size,
                settings.keep_compared_pairs,
            )
            self._tracker.slice_done(partition, decisions)

    def _partition_batches(
        self, plan: CandidatePlan
    ) -> list[list[tuple[int, tuple[tuple[str, str], ...]]]]:
        """Coalesce the plan into chunk-sized dispatch batches.

        One dispatch batch holds whole consecutive partitions (split
        only when a single partition exceeds chunk_size) and carries
        ~chunk_size pairs, so worker round trips stay as coarse as the
        striped fan-out while cache working sets stay block-aligned.
        """
        chunk_size = self._settings.chunk_size
        batches: list[list[tuple[int, tuple[tuple[str, str], ...]]]] = []
        batch: list[tuple[int, tuple[tuple[str, str], ...]]] = []
        batched_pairs = 0
        for index, partition in enumerate(plan.partitions):
            pairs = partition.pairs
            for start in range(0, len(pairs), chunk_size):
                piece = pairs[start : start + chunk_size]
                batch.append((index, piece))
                batched_pairs += len(piece)
                if batched_pairs >= chunk_size:
                    batches.append(batch)
                    batch = []
                    batched_pairs = 0
        if batch:
            batches.append(batch)
        return batches

    def _execute_partitioned(
        self, relation, plan: CandidatePlan
    ) -> Iterator[DetectionResult]:
        settings = self._settings
        size = plan.relation_size
        batches = self._partition_batches(plan)
        if not batches:
            return
        self.report.dispatch_tasks = len(batches)
        with fork_context().Pool(
            settings.n_jobs,
            initializer=init_worker,
            initargs=(
                self._procedure,
                relation,
                settings.keep_derivations,
            ),
        ) as pool:
            current: int | None = None
            bucket: list[XTupleDecision] = []
            for batch_results in pool.imap(decide_batch, batches):
                for index, chunk_decisions in batch_results:
                    if current is None:
                        current = index
                    elif index != current:
                        yield self._partition_slice(
                            plan, current, tuple(bucket), size
                        )
                        bucket = []
                        current = index
                    bucket.extend(chunk_decisions)
            if current is not None:
                yield self._partition_slice(
                    plan, current, tuple(bucket), size
                )

    def _partition_slice(
        self,
        plan: CandidatePlan,
        index: int,
        decisions: tuple[XTupleDecision, ...],
        size: int,
    ) -> DetectionResult:
        partition = plan.partitions[index]
        result = slice_result(
            partition,
            decisions,
            size,
            self._settings.keep_compared_pairs,
        )
        self._tracker.slice_done(partition, decisions)
        return result

    def _execute_partitioned_supervised(
        self, relation, plan: CandidatePlan
    ) -> Iterator[DetectionResult]:
        """Partitioned execution under retry/timeout supervision.

        Dispatches the same coalesced batches as the unsupervised path,
        but through the :class:`SupervisedDispatcher`; completed tasks
        are re-ordered to plan order before emission.  A task resolved
        terminally (``on_error="skip"``, or a degraded re-execution
        that itself failed) drops *every* partition it covers — chunks
        of those partitions decided by neighbouring successful tasks
        are discarded at the emission boundary, so a partition is
        either complete or absent, never truncated.
        """
        settings = self._settings
        size = plan.relation_size
        batches = self._partition_batches(plan)
        if not batches:
            return
        self.report.dispatch_tasks = len(batches)

        def batch_partitions(index: int) -> list[CandidatePartition]:
            seen = dict.fromkeys(tag for tag, _pairs in batches[index])
            return [plan.partitions[tag] for tag in seen]

        def fallback(index: int):
            return [
                (
                    tag,
                    decide_pairs(
                        self._procedure,
                        relation,
                        pairs,
                        settings.keep_derivations,
                    ),
                )
                for tag, pairs in batches[index]
            ]

        dispatcher = SupervisedDispatcher(
            policy=settings.retry,
            on_error=settings.on_error,
            tracker=self._tracker,
            task_partitions=batch_partitions,
            fallback=fallback,
            max_outstanding=settings.n_jobs,
        )
        with fork_context().Pool(
            settings.n_jobs,
            initializer=init_worker,
            initargs=(
                self._procedure,
                relation,
                settings.keep_derivations,
            ),
        ) as pool:
            buffer: dict[int, list | None] = {}
            next_task = 0
            current: int | None = None
            bucket: list[XTupleDecision] = []
            failed: set[int] = set()
            for task_index, task_results in dispatcher.run(
                pool, decide_supervised, batches
            ):
                buffer[task_index] = task_results
                while next_task in buffer:
                    results = buffer.pop(next_task)
                    if results is None:
                        # Terminal failure: every partition the batch
                        # covers is dropped; keep the emission cursor
                        # moving with decision-free placeholders.
                        covered = dict.fromkeys(
                            tag for tag, _pairs in batches[next_task]
                        )
                        failed.update(covered)
                        results = [(tag, None) for tag in covered]
                    next_task += 1
                    for index, chunk_decisions in results:
                        if current is None:
                            current = index
                        elif index != current:
                            if current not in failed:
                                yield self._partition_slice(
                                    plan, current, tuple(bucket), size
                                )
                            bucket = []
                            current = index
                        if chunk_decisions is not None:
                            bucket.extend(chunk_decisions)
            if current is not None and current not in failed:
                yield self._partition_slice(
                    plan, current, tuple(bucket), size
                )

    # ------------------------------------------------------------------
    # Skew-aware work stealing
    # ------------------------------------------------------------------

    def _partition_weights(
        self, relation, plan: CandidatePlan
    ) -> list[float] | None:
        """Per-partition cost weights under the configured model.

        ``None`` for the pair-count model.  Under ``"weighted"`` each
        partition's sampled weight (alternative counts × string
        lengths) is normalized by the plan's pair-weighted mean, so the
        plan's *total* weighted cost equals its total pair count and
        ``split_pairs`` keeps its meaning of "average-tuple pairs".
        """
        if self._settings.split_cost_model != "weighted":
            return None
        if not plan.partitions:
            return []
        raw = [
            estimate_partition_weight(relation, partition)
            for partition in plan.partitions
        ]
        total_pairs = sum(len(p.pairs) for p in plan.partitions)
        if total_pairs <= 0:
            return [1.0] * len(raw)
        baseline = (
            sum(
                weight * len(partition.pairs)
                for weight, partition in zip(raw, plan.partitions)
            )
            / total_pairs
        )
        if baseline <= 0.0:
            return [1.0] * len(raw)
        return [weight / baseline for weight in raw]

    def _stealing_units(
        self, relation, plan: CandidatePlan
    ) -> tuple[
        list[tuple[tuple[str, str], ...]],
        list[int],
        list[int],
        list[float],
    ]:
        """Subdivide the plan into schedulable work units.

        Returns ``(unit pair tuples, unit → partition index, units per
        partition, unit costs)``; unit ids are list positions.  Under
        the weighted cost model a partition's effective split budget is
        ``split_pairs / weight`` — fat-tuple partitions subdivide at
        lower pair counts — and unit costs carry the weight into
        dispatch ordering.
        """
        settings = self._settings
        weights = self._partition_weights(relation, plan)
        unit_pairs: list[tuple[tuple[str, str], ...]] = []
        unit_partition: list[int] = []
        unit_costs: list[float] = []
        units_per_partition = [0] * len(plan.partitions)
        for index, partition in enumerate(plan.partitions):
            weight = weights[index] if weights else 1.0
            budget = settings.split_pairs
            if weight > 0.0:
                budget = max(1, int(settings.split_pairs / weight))
            if len(partition) <= budget:
                units = [partition]
            else:
                units = subdivide_partition(
                    self._splitter,
                    relation,
                    partition,
                    max_pairs=budget,
                    report=self.report,
                )
            units_per_partition[index] = len(units)
            for unit in units:
                unit_partition.append(index)
                unit_pairs.append(unit.pairs)
                unit_costs.append(len(unit.pairs) * weight)
        self.report.work_units = len(unit_pairs)
        return unit_pairs, unit_partition, units_per_partition, unit_costs

    def _stealing_tasks(
        self,
        unit_pairs: list[tuple[tuple[str, str], ...]],
        unit_costs: list[float] | None = None,
    ) -> list[list[tuple[int, tuple[tuple[str, str], ...]]]]:
        """Pack units into dispatch tasks, costliest units first.

        Largest-first (LPT) dispatch through the pool's shared queue is
        what makes the stealing: whichever worker goes idle takes the
        biggest remaining unit, so the skewed block's sub-units spread
        across workers instead of queueing behind each other.  "Biggest"
        is the unit's cost — pair count under the default model, weight-
        scaled pairs under ``"weighted"``.  Units of a chunk's worth of
        pairs or more always ship alone — coalescing them would glue a
        skewed block's sub-units back together — and only smaller units
        are packed into ~chunk-sized tasks so tiny blocks don't pay one
        IPC round trip each.
        """
        chunk_size = self._settings.chunk_size
        if unit_costs is None:
            unit_costs = [float(len(pairs)) for pairs in unit_pairs]
        order = sorted(
            range(len(unit_pairs)),
            key=lambda unit: (-unit_costs[unit], unit),
        )
        tasks: list[list[tuple[int, tuple[tuple[str, str], ...]]]] = []
        task: list[tuple[int, tuple[tuple[str, str], ...]]] = []
        task_pairs = 0
        for unit in order:
            size = len(unit_pairs[unit])
            if size >= chunk_size:
                tasks.append([(unit, unit_pairs[unit])])
                continue
            task.append((unit, unit_pairs[unit]))
            task_pairs += size
            if task_pairs >= chunk_size:
                tasks.append(task)
                task = []
                task_pairs = 0
        if task:
            tasks.append(task)
        return tasks

    def _decide_task(
        self, relation, task, deadline: float | None = None
    ) -> list:
        """Decide one stealing task of ``(unit, pairs)`` in-process.

        With a *deadline* (supervised serial stealing), each unit is
        decided in chunk-sized slices with a deadline check at every
        chunk boundary; without one (the default, and the degraded
        fallback) the loop is equivalent to deciding each unit whole.
        """
        settings = self._settings
        results: list = []
        for unit, pairs in task:
            decisions: list[XTupleDecision] = []
            for start in range(0, len(pairs), settings.chunk_size):
                check_deadline(deadline)
                decisions.extend(
                    decide_pairs(
                        self._procedure,
                        relation,
                        pairs[start : start + settings.chunk_size],
                        settings.keep_derivations,
                    )
                )
            results.append((unit, decisions))
        return results

    def _execute_stealing(
        self, relation, plan: CandidatePlan
    ) -> Iterator[DetectionResult]:
        settings = self._settings
        if not plan.partitions:
            return
        unit_pairs, unit_partition, remaining, unit_costs = (
            self._stealing_units(relation, plan)
        )
        tasks = self._stealing_tasks(unit_pairs, unit_costs)
        self.report.dispatch_tasks = len(tasks)
        supervised = settings.supervised

        def task_partitions(index: int) -> list[CandidatePartition]:
            seen = dict.fromkeys(
                unit_partition[unit] for unit, _pairs in tasks[index]
            )
            return [plan.partitions[i] for i in seen]

        if settings.n_jobs == 1:
            if supervised:
                runner = self._run_tasks_inline_supervised(
                    relation, tasks, task_partitions
                )
                yield from self._collect_stolen_supervised(
                    plan, runner, tasks, unit_pairs, unit_partition,
                    remaining,
                )
                return
            results = (self._decide_task(relation, task) for task in tasks)
            yield from self._collect_stolen(
                plan, results, unit_pairs, unit_partition, remaining
            )
            return
        with fork_context().Pool(
            settings.n_jobs,
            initializer=init_worker,
            initargs=(
                self._procedure,
                relation,
                settings.keep_derivations,
            ),
        ) as pool:
            if supervised:
                dispatcher = SupervisedDispatcher(
                    policy=settings.retry,
                    on_error=settings.on_error,
                    tracker=self._tracker,
                    task_partitions=task_partitions,
                    fallback=lambda index: self._decide_task(
                        relation, tasks[index]
                    ),
                    max_outstanding=settings.n_jobs,
                )
                yield from self._collect_stolen_supervised(
                    plan,
                    dispatcher.run(pool, decide_supervised, tasks),
                    tasks,
                    unit_pairs,
                    unit_partition,
                    remaining,
                )
            else:
                yield from self._collect_stolen(
                    plan,
                    pool.imap_unordered(decide_batch, tasks),
                    unit_pairs,
                    unit_partition,
                    remaining,
                )

    def _run_tasks_inline_supervised(
        self, relation, tasks, task_partitions
    ) -> Iterator[tuple[int, list | None]]:
        """Serial stealing under the attempt budget.

        Yields ``(task index, results | None)`` exactly like the
        parallel dispatcher.  Each attempt captures its deadline before
        running and the task's chunk loop checks it at every chunk
        boundary, so ``RetryPolicy.timeout`` is honored without a pool;
        the fault hook is consulted once per attempt with the task's
        flattened pairs (inside the deadline), the degraded fallback is
        hook- and deadline-free.
        """
        settings = self._settings
        for task_index, task in enumerate(tasks):

            def attempt_task(attempt, task=task):
                deadline = settings.retry.deadline()
                hook = fault_hook()
                if hook is not None:
                    hook(
                        attempt,
                        [pair for _unit, pairs in task for pair in pairs],
                    )
                return self._decide_task(relation, task, deadline=deadline)

            yield task_index, run_supervised_inline(
                attempt_task,
                fallback=lambda task=task: self._decide_task(
                    relation, task
                ),
                partitions=task_partitions(task_index),
                policy=settings.retry,
                on_error=settings.on_error,
                tracker=self._tracker,
            )

    def _collect_stolen(
        self,
        plan: CandidatePlan,
        results,
        unit_pairs: list[tuple[tuple[str, str], ...]],
        unit_partition: list[int],
        remaining: list[int],
    ) -> Iterator[DetectionResult]:
        """Regroup stolen units and emit partitions in plan order.

        Units arrive in completion order; each partition's decisions
        are reassembled into its original pair emission order, and
        finished partitions are buffered until every earlier partition
        has been yielded — stealing reorders *work*, never *results*.
        """
        size = plan.relation_size
        keep = self._settings.keep_compared_pairs
        pending: dict[int, dict[int, list[XTupleDecision]]] = {}
        ready: dict[int, tuple[XTupleDecision, ...]] = {}
        next_index = 0
        for task_results in results:
            for unit, decisions in task_results:
                index = unit_partition[unit]
                bucket = pending.setdefault(index, {})
                bucket[unit] = decisions
                remaining[index] -= 1
                if remaining[index]:
                    continue
                ready[index] = _reassemble(
                    plan.partitions[index], pending.pop(index), unit_pairs
                )
                while next_index in ready:
                    partition = plan.partitions[next_index]
                    assembled = ready.pop(next_index)
                    yield slice_result(partition, assembled, size, keep)
                    self._tracker.slice_done(partition, assembled)
                    next_index += 1
        if pending or next_index != len(plan.partitions):  # pragma: no cover
            raise RuntimeError(
                "work-stealing execution lost "
                f"{len(plan.partitions) - next_index} partitions"
            )

    def _collect_stolen_supervised(
        self,
        plan: CandidatePlan,
        runner: Iterator[tuple[int, list | None]],
        tasks,
        unit_pairs: list[tuple[tuple[str, str], ...]],
        unit_partition: list[int],
        remaining: list[int],
    ) -> Iterator[DetectionResult]:
        """Regroup supervised stolen units, dropping failed partitions.

        Like :meth:`_collect_stolen`, but the runner yields ``(task
        index, results | None)`` — ``None`` marks a task resolved
        terminally, which drops every partition any of its units
        belongs to (a partition is either complete or absent, never
        truncated); the remaining partitions still emit in plan order.
        """
        size = plan.relation_size
        keep = self._settings.keep_compared_pairs
        pending: dict[int, dict[int, list[XTupleDecision]]] = {}
        ready: dict[int, tuple[XTupleDecision, ...] | None] = {}
        failed: set[int] = set()
        next_index = 0

        def resolve(index: int) -> None:
            if index in failed:
                pending.pop(index, None)
                ready[index] = None
            else:
                ready[index] = _reassemble(
                    plan.partitions[index], pending.pop(index), unit_pairs
                )

        for task_index, task_results in runner:
            if task_results is None:
                for unit, _pairs in tasks[task_index]:
                    index = unit_partition[unit]
                    failed.add(index)
                    remaining[index] -= 1
                    if not remaining[index]:
                        resolve(index)
            else:
                for unit, decisions in task_results:
                    index = unit_partition[unit]
                    pending.setdefault(index, {})[unit] = decisions
                    remaining[index] -= 1
                    if not remaining[index]:
                        resolve(index)
            while next_index in ready:
                decisions = ready.pop(next_index)
                partition = plan.partitions[next_index]
                if decisions is not None:
                    yield slice_result(partition, decisions, size, keep)
                    self._tracker.slice_done(partition, decisions)
                next_index += 1
        if pending or next_index != len(plan.partitions):  # pragma: no cover
            raise RuntimeError(
                "supervised work-stealing execution lost "
                f"{len(plan.partitions) - next_index} partitions"
            )


def _reassemble(
    partition: CandidatePartition,
    buckets: dict[int, list[XTupleDecision]],
    unit_pairs: list[tuple[tuple[str, str], ...]],
) -> tuple[XTupleDecision, ...]:
    """One partition's decisions, restored to plan emission order."""
    if len(buckets) == 1:
        # Whole partitions ride as one unit — most of a typical plan —
        # and sub-key groups that stayed intact: no reorder needed.
        ((unit, decisions),) = buckets.items()
        if unit_pairs[unit] == partition.pairs:
            return tuple(decisions)
    by_pair: dict[tuple[str, str], XTupleDecision] = {}
    for unit, decisions in buckets.items():
        for pair, decision in zip(unit_pairs[unit], decisions):
            by_pair[pair] = decision
    return tuple(by_pair[pair] for pair in partition.pairs)


__all__ = [
    "COST_SAMPLE_MEMBERS",
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_SPLIT_PAIRS",
    "ENGINE_SCHEDULING_MODES",
    "ExecutionEngine",
    "ExecutionSettings",
    "SPLIT_COST_MODELS",
    "estimate_partition_weight",
    "prewarm_plan",
    "subdivide_partition",
]
