"""Worker-process plumbing of the execution engine.

Workers are forked (where the platform allows) with the decision
procedure, the relation handle and the run options installed once per
process by :func:`init_worker`; every dispatch then ships only pair
ids.  Storage backends are opened read-only by workers — a forked
worker re-opens a spilled store's segment files for itself and never
copies the relation (see
:meth:`repro.pdb.storage.spill.SpillingXTupleStore._handle`).

The same chunk-deciding helpers back the in-process serial paths, so
serial and fanned-out execution share one code path per pair.
"""

from __future__ import annotations

import itertools
import multiprocessing
from collections.abc import Iterator, Sequence

from repro.pdb.storage import fetch_tuples

#: Worker-process state for the multiprocessing fan-out, installed by
#: :func:`init_worker` via the fork of the parent.  Each worker gets its
#: own copy of the decision procedure — and therefore its own similarity
#: caches.  Under partitioned scheduling those caches arrive pre-warmed
#: and frozen (read-only, shared copy-on-write); under stealing and
#: striped scheduling they grow independently per worker.
_WORKER_STATE: dict[str, object] = {}


def init_worker(procedure, relation, keep_derivations) -> None:
    """Pool initializer: install per-process decision state."""
    _WORKER_STATE["procedure"] = procedure
    _WORKER_STATE["relation"] = relation
    _WORKER_STATE["keep_derivations"] = keep_derivations


def fork_context():
    """The pool context: fork when available (shares pre-warmed caches)."""
    return multiprocessing.get_context(
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else None
    )


def chunk_working_set(relation, pairs: Sequence[tuple[str, str]]):
    """The tuples one chunk of pairs touches, loaded as one batch.

    One batched working-set load per chunk: out-of-core stores decode
    each needed segment page once instead of per pair lookup (and a
    multi-source view splits the batch per backing store), and the
    caller only ever holds this chunk's tuples (plus the store's page
    cache) decoded — never a whole single-partition plan's relation.
    """
    members: dict[str, None] = {}
    for left, right in pairs:
        members[left] = None
        members[right] = None
    return fetch_tuples(relation, members)


def decide_pairs(procedure, relation, pairs, keep_derivations):
    """Decide one bounded chunk of pairs against one working set."""
    working_set = chunk_working_set(relation, pairs)
    decide = procedure.decide
    return [
        decide(
            working_set[left], working_set[right],
            keep_derivations=keep_derivations,
        )
        for left, right in pairs
    ]


def decide_chunk(pairs: Sequence[tuple[str, str]]):
    """Worker entry point: decide one chunk from the installed state."""
    return decide_pairs(
        _WORKER_STATE["procedure"],
        _WORKER_STATE["relation"],
        pairs,
        _WORKER_STATE["keep_derivations"],
    )


def decide_batch(batch):
    """Decide one dispatch batch of ``(tag, pairs)`` chunks.

    Small chunks are coalesced into one batch so worker round trips
    cost the same as a flat fan-out; the per-chunk result lists keep
    the tag (a partition index, or a stealing-mode work-unit id) for
    the parent's regrouping.
    """
    return [(tag, decide_chunk(pairs)) for tag, pairs in batch]


#: Test seam for deterministic fault injection (see
#: :mod:`repro.testing.faults`).  Installed in the *parent* before the
#: pool forks, so every worker inherits it; consulted only by the
#: supervised dispatch path, once per attempt, with the attempt number
#: and the flattened pairs of the dispatch — ``None`` (the production
#: default) costs nothing.
_FAULT_HOOK = None


def set_fault_hook(hook) -> None:
    """Install (or with ``None`` clear) the fault-injection hook."""
    global _FAULT_HOOK
    _FAULT_HOOK = hook


def fault_hook():
    """The installed fault-injection hook, or ``None``.

    Read through a function (not a ``from … import``) so callers always
    see the live module state :func:`set_fault_hook` mutates.
    """
    return _FAULT_HOOK


def decide_supervised(payload):
    """Supervised worker entry point: ``(attempt, batch)`` dispatches.

    Identical to :func:`decide_batch` except that the attempt number
    travels with the task — retries land on whichever worker is free,
    so per-process counters cannot target "the second attempt", but a
    payload-borne attempt can — and the fault hook is consulted first.
    """
    attempt, batch = payload
    hook = _FAULT_HOOK
    if hook is not None:
        hook(attempt, [pair for _tag, pairs in batch for pair in pairs])
    return decide_batch(batch)


def chunked(
    pairs: Iterator[tuple[str, str]], size: int
) -> Iterator[list[tuple[str, str]]]:
    """Bounded chunks of a pair stream (the striped legacy fan-out)."""
    while True:
        chunk = list(itertools.islice(pairs, size))
        if not chunk:
            return
        yield chunk


__all__ = [
    "chunk_working_set",
    "chunked",
    "decide_batch",
    "decide_chunk",
    "decide_pairs",
    "decide_supervised",
    "fault_hook",
    "fork_context",
    "init_worker",
    "set_fault_hook",
]
