"""The execution engine behind :class:`~repro.matching.DuplicateDetector`.

Everything between planning and the per-pair decision:

* :mod:`~repro.matching.executor.scheduler` —
  :class:`ExecutionEngine` / :class:`ExecutionSettings`: partitioned
  scheduling, skew-aware work stealing (cost-budget subdivision through
  the reducers' ``split_partition`` hook, largest-first dispatch,
  plan-order reassembly), cache pre-warm/freeze around forks;
* :mod:`~repro.matching.executor.workers` — forked worker state and the
  chunk/batch deciding helpers shared by serial and fanned-out paths;
* :mod:`~repro.matching.executor.multisource` — source-tagged planning
  over :class:`~repro.pdb.storage.MultiSourceStore` views and
  cross-source pruning (the ℛ1/ℛ2, ℛ3/ℛ4 consolidation scenario
  without materializing a union);
* :mod:`~repro.matching.executor.faults` — the fault-tolerance layer:
  structured error taxonomy (:class:`WorkerCrash` /
  :class:`WorkerTimeout` / :class:`PartitionFailure`),
  :class:`RetryPolicy` and the supervised dispatcher driving
  retry-then-degrade recovery;
* :mod:`~repro.matching.executor.progress` —
  :class:`ExecutionReport` run reports, per-partition
  :class:`PartitionProgress` events and :class:`FaultEvent` recovery
  events;
* :mod:`~repro.matching.executor.results` — the
  :class:`DetectionResult` container every path produces.

Every mode yields exactly the decisions of the plain serial pipeline,
in the same order, for every storage backend.
"""

from repro.matching.executor.faults import (
    ON_ERROR_MODES,
    DeadlineExceeded,
    ExecutionFault,
    PartitionFailure,
    RetryPolicy,
    WorkerCrash,
    WorkerTimeout,
    check_deadline,
)
from repro.matching.executor.multisource import (
    cross_source_plan,
    partition_sources,
    plan_sources,
    prune_disjoint_sources,
    source_key_ranges,
    tag_plan_sources,
)
from repro.matching.executor.progress import (
    ExecutionReport,
    FaultEvent,
    FaultObserver,
    PartitionProgress,
    ProgressObserver,
)
from repro.matching.executor.results import DetectionResult, slice_result
from repro.matching.executor.scheduler import (
    DEFAULT_CHUNK_SIZE,
    DEFAULT_SPLIT_PAIRS,
    ENGINE_SCHEDULING_MODES,
    PREWARM_PAIR_BUDGET,
    SPLIT_COST_MODELS,
    ExecutionEngine,
    ExecutionSettings,
    estimate_partition_weight,
    prewarm_plan,
    subdivide_partition,
)

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_SPLIT_PAIRS",
    "ENGINE_SCHEDULING_MODES",
    "ON_ERROR_MODES",
    "PREWARM_PAIR_BUDGET",
    "SPLIT_COST_MODELS",
    "DeadlineExceeded",
    "DetectionResult",
    "ExecutionEngine",
    "ExecutionFault",
    "ExecutionReport",
    "ExecutionSettings",
    "FaultEvent",
    "FaultObserver",
    "PartitionFailure",
    "PartitionProgress",
    "ProgressObserver",
    "RetryPolicy",
    "WorkerCrash",
    "WorkerTimeout",
    "check_deadline",
    "cross_source_plan",
    "estimate_partition_weight",
    "partition_sources",
    "plan_sources",
    "prewarm_plan",
    "prune_disjoint_sources",
    "slice_result",
    "source_key_ranges",
    "subdivide_partition",
    "tag_plan_sources",
]
