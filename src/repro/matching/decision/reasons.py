"""Per-decision reason codes: *why* a pair got its matching value.

A calibrated production pipeline cannot stop at η ∈ {m, p, u} — a
reviewer (or an auditor reading the manifest) needs to know *which*
threshold the similarity cleared by *how much*, which identification
rule or likelihood term forced the decision, and whether a safety gate
overrode the classifier entirely.  :func:`categorize_decision` maps any
``(similarity, classifier)`` to exactly one
:class:`ReasonCategory` — the categorization is **total**: every float
(±inf and NaN included) lands in precisely one category, mirroring
:meth:`ThresholdClassifier.classify
<repro.matching.decision.base.ThresholdClassifier.classify>`'s
branch structure so reason and status can never disagree.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.matching.decision.base import MatchStatus, ThresholdClassifier


class ReasonCategory(enum.Enum):
    """The primary reason a decision came out the way it did.

    Exactly one applies to every decision:

    ``GATE_FORCED``
        A safety gate tripped at calibration time; the classifier
        refuses to auto-decide and everything is POSSIBLE.
    ``ABOVE_MATCH``
        ``sim > T_μ`` — auto-matched.
    ``BELOW_UNMATCH``
        ``sim < T_λ`` — auto-rejected.
    ``POSSIBLE_BAND``
        Neither strict inequality held (the ``[T_λ, T_μ]`` band, which
        also absorbs NaN similarities) — clerical review.
    """

    GATE_FORCED = "gate_forced"
    ABOVE_MATCH = "above_match"
    BELOW_UNMATCH = "below_unmatch"
    POSSIBLE_BAND = "possible_band"

    @property
    def status(self) -> MatchStatus:
        """The matching value this category implies."""
        if self is ReasonCategory.ABOVE_MATCH:
            return MatchStatus.MATCH
        if self is ReasonCategory.BELOW_UNMATCH:
            return MatchStatus.UNMATCH
        return MatchStatus.POSSIBLE


@dataclass(frozen=True)
class ReasonCode:
    """One decision's primary reason, margin, and provenance.

    Attributes
    ----------
    category:
        The (single) primary :class:`ReasonCategory`.
    margin:
        Signed distance to the decisive threshold: ``sim - T_μ`` for
        matches (positive), ``sim - T_λ`` for non-matches (negative),
        and for the possible band the signed distance to the *nearer*
        boundary (``min(T_μ - sim, sim - T_λ)``, ≥ 0 inside the band;
        NaN similarity yields a NaN margin).
    threshold:
        The threshold the margin is measured against.
    gates:
        Names of the tripped gates (``GATE_FORCED`` only).
    term:
        The rule / likelihood term that forced the similarity, when the
        model can name one (``RuleBasedModel`` names the strongest
        firing rule; ``FellegiSunterModel`` names the agreement
        pattern).  ``None`` when not recoverable.
    """

    category: ReasonCategory
    margin: float
    threshold: float
    gates: tuple[str, ...] = ()
    term: str | None = None

    @property
    def code(self) -> str:
        """Compact primary code, e.g. ``above_match:figure1``."""
        base = self.category.value
        if self.category is ReasonCategory.GATE_FORCED and self.gates:
            return f"{base}:{','.join(self.gates)}"
        if self.term is not None:
            return f"{base}:{self.term}"
        return base

    def as_dict(self) -> dict:
        """JSON-serializable form (for reports and manifests)."""
        return {
            "category": self.category.value,
            "code": self.code,
            "margin": self.margin,
            "threshold": self.threshold,
            "gates": list(self.gates),
            "term": self.term,
        }


@dataclass(frozen=True)
class DecisionReason:
    """A decision joined with its reason code (one row of an audit)."""

    left_id: str
    right_id: str
    status: MatchStatus
    similarity: float
    reason: ReasonCode

    def as_dict(self) -> dict:
        return {
            "left_id": self.left_id,
            "right_id": self.right_id,
            "status": self.status.value,
            "similarity": self.similarity,
            "reason": self.reason.as_dict(),
        }


def _forcing_term(model, similarity: float, category: ReasonCategory):
    """Ask the model which of its terms forced a decisive similarity."""
    if model is None or category is ReasonCategory.POSSIBLE_BAND:
        return None
    supplier = getattr(model, "forcing_term", None)
    if not callable(supplier):
        return None
    return supplier(similarity)


def categorize_decision(
    similarity: float,
    classifier: ThresholdClassifier,
    *,
    model=None,
) -> ReasonCode:
    """Total categorization of one decided similarity.

    The branch order mirrors ``ThresholdClassifier.classify`` exactly
    (gate check first — a forcing classifier never reaches the
    threshold comparisons), so the returned category's
    :attr:`~ReasonCategory.status` always equals the status the
    classifier produced for the same similarity.
    """
    trips = getattr(classifier, "trips", ())
    if trips:
        return ReasonCode(
            category=ReasonCategory.GATE_FORCED,
            margin=similarity - classifier.match_threshold,
            threshold=classifier.match_threshold,
            gates=tuple(trip.gate for trip in trips),
        )
    t_mu = classifier.match_threshold
    t_lambda = classifier.unmatch_threshold
    if similarity > t_mu:
        category, margin, threshold = (
            ReasonCategory.ABOVE_MATCH,
            similarity - t_mu,
            t_mu,
        )
    elif similarity < t_lambda:
        category, margin, threshold = (
            ReasonCategory.BELOW_UNMATCH,
            similarity - t_lambda,
            t_lambda,
        )
    else:
        # The closed band [T_λ, T_μ]; NaN comparisons are both False and
        # land here too, with a NaN margin.
        category = ReasonCategory.POSSIBLE_BAND
        margin = min(t_mu - similarity, similarity - t_lambda)
        threshold = t_mu
    return ReasonCode(
        category=category,
        margin=margin,
        threshold=threshold,
        term=_forcing_term(model, similarity, category),
    )


__all__ = [
    "DecisionReason",
    "ReasonCategory",
    "ReasonCode",
    "categorize_decision",
]
