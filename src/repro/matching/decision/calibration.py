"""Calibrated decision thresholds with finite-sample FPR guarantees.

The paper's decision models (Section III-D) classify the derived
similarity against expert-chosen thresholds ``T_λ``/``T_μ`` — but a
production deployment needs *guarantees*: "at most 1% of the pairs we
auto-merge are false positives".  This module turns a labeled
:class:`CalibrationSet` of scored pairs into such a threshold two ways:

* :func:`calibrate_conformal` — split-conformal calibration: ``T_μ`` is
  the ``⌈(n+1)(1-α)⌉``-th smallest non-match score, so for any new
  exchangeable non-match pair ``P(score > T_μ) ≤ α`` *at finite n*
  (the +1 is the finite-sample correction; an optional DKW tightening
  makes the bound hold with confidence ``1-alpha`` instead of merely in
  expectation).  This is the conformal counterpart of deciding by
  posterior match probability (Sadinle 2018's Bayesian partitioning —
  see PAPERS.md): both replace fixed thresholds with a data-derived
  quantile of the non-match score distribution.
* :func:`calibrate_np` — the empirical Neyman–Pearson rule: the
  *smallest* threshold whose empirical FPR on the calibration set is at
  most the target, i.e. maximum power subject to the size constraint.

Either produces a :class:`Calibration` that :func:`calibrate` wraps —
together with :mod:`gate <repro.matching.decision.gates>` checks —
into a :class:`CalibratedModel`: a drop-in
:class:`~repro.matching.decision.base.DecisionModel` around any
existing model that keeps the inner model's ``attribute_floors()``
alive (threshold pushdown still prunes), emits per-decision
:class:`~repro.matching.decision.reasons.ReasonCode`'s, and — when a
safety gate trips — forces every decision to UNSURE
(:attr:`~repro.matching.decision.base.MatchStatus.POSSIBLE`) instead
of silently deciding with an untrustworthy threshold.
"""

from __future__ import annotations

import hashlib
import json
import math
from bisect import bisect_right
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.matching.comparison import ComparisonVector
from repro.matching.decision.base import (
    Decision,
    MatchStatus,
    ThresholdClassifier,
)
from repro.matching.decision.reasons import (
    DecisionReason,
    ReasonCode,
    categorize_decision,
)

#: Digest size (bytes) of calibration-set fingerprints.
_FINGERPRINT_BYTES = 16

#: Methods :func:`calibrate` accepts.
CALIBRATION_METHODS = ("conformal", "np")


@dataclass(frozen=True)
class CalibrationPair:
    """One labeled, scored pair of a calibration set.

    Attributes
    ----------
    pair_id:
        Stable identifier of the pair (``"t1|t4"`` for detection-derived
        sets) — part of the set's fingerprint, so two sets over the
        same pairs with the same scores fingerprint equal.
    score:
        The decision model's similarity for the pair, on whatever scale
        the model classifies (normalized certainty, matching weight …).
    is_match:
        Ground-truth label.
    """

    pair_id: str
    score: float
    is_match: bool

    def __post_init__(self) -> None:
        if math.isnan(self.score):
            raise ValueError(f"{self.pair_id}: score must not be NaN")


class CalibrationSet:
    """An immutable collection of labeled scored pairs.

    >>> pairs = [CalibrationPair("d", 0.9, True),
    ...          CalibrationPair("n", 0.1, False)]
    >>> cal = CalibrationSet(pairs)
    >>> (len(cal), cal.match_scores, cal.nonmatch_scores)
    (2, (0.9,), (0.1,))
    """

    def __init__(self, pairs: Iterable[CalibrationPair]) -> None:
        normalized = []
        for pair in pairs:
            if not isinstance(pair, CalibrationPair):
                pair_id, score, is_match = pair
                pair = CalibrationPair(
                    str(pair_id), float(score), bool(is_match)
                )
            normalized.append(pair)
        self._pairs = tuple(normalized)
        self._match_scores = tuple(
            sorted(p.score for p in self._pairs if p.is_match)
        )
        self._nonmatch_scores = tuple(
            sorted(p.score for p in self._pairs if not p.is_match)
        )

    @property
    def pairs(self) -> tuple[CalibrationPair, ...]:
        """The labeled pairs, in construction order."""
        return self._pairs

    @property
    def match_scores(self) -> tuple[float, ...]:
        """Scores of the true matches, ascending."""
        return self._match_scores

    @property
    def nonmatch_scores(self) -> tuple[float, ...]:
        """Scores of the true non-matches, ascending."""
        return self._nonmatch_scores

    def __len__(self) -> int:
        return len(self._pairs)

    def fingerprint(self) -> str:
        """Content fingerprint: equal iff pairs, scores and labels are.

        Pairs are sorted before hashing, so two sets over the same
        labeled pairs fingerprint equal regardless of construction
        order; JSON serializes floats shortest-round-trip, so the
        fingerprint is exact in the scores.
        """
        rows = sorted(
            [p.pair_id, p.score, p.is_match] for p in self._pairs
        )
        document = json.dumps(
            rows, sort_keys=True, separators=(",", ":")
        )
        return hashlib.blake2b(
            document.encode("utf-8"), digest_size=_FINGERPRINT_BYTES
        ).hexdigest()

    def split(
        self, holdout_fraction: float, seed: int
    ) -> tuple["CalibrationSet", "CalibrationSet"]:
        """Deterministic (fit, holdout) split by seeded shuffle."""
        import random

        if not 0.0 < holdout_fraction < 1.0:
            raise ValueError(
                f"holdout_fraction outside (0, 1): {holdout_fraction}"
            )
        order = sorted(self._pairs, key=lambda p: p.pair_id)
        random.Random(seed).shuffle(order)
        cut = int(round(len(order) * holdout_fraction))
        return CalibrationSet(order[cut:]), CalibrationSet(order[:cut])

    @classmethod
    def from_result(
        cls, result, true_matches: Iterable[tuple[str, str]]
    ) -> "CalibrationSet":
        """Label a detection run's decisions against known truth.

        The production calibration loop: detect over a labeled corpus,
        harvest every decision's derived similarity as a score, label
        it by truth membership.  Pairs are normalized ``left <= right``
        to match the verification layer's convention.
        """
        truth = {tuple(sorted(pair)) for pair in true_matches}
        pairs = []
        for decision in result.decisions:
            key = tuple(sorted((decision.left_id, decision.right_id)))
            pairs.append(
                CalibrationPair(
                    "|".join(key), decision.similarity, key in truth
                )
            )
        return cls(pairs)

    # ------------------------------------------------------------------
    # Persistence (the CLI's --calibration file format)
    # ------------------------------------------------------------------

    def to_document(self) -> dict:
        """JSON-serializable form (exact float round-trip)."""
        return {
            "pairs": [
                [p.pair_id, p.score, p.is_match] for p in self._pairs
            ]
        }

    @classmethod
    def from_document(cls, document: dict) -> "CalibrationSet":
        return cls(
            CalibrationPair(str(pair_id), float(score), bool(is_match))
            for pair_id, score, is_match in document.get("pairs", ())
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_document(), handle, separators=(",", ":"))

    @classmethod
    def load(cls, path: str) -> "CalibrationSet":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_document(json.load(handle))

    def __repr__(self) -> str:
        return (
            f"CalibrationSet({len(self._match_scores)} matches, "
            f"{len(self._nonmatch_scores)} non-matches)"
        )


def empirical_fpr(
    threshold: float, nonmatch_scores: Sequence[float]
) -> float:
    """Fraction of non-match scores a ``score > threshold`` rule accepts.

    Strict ``>`` mirrors :class:`ThresholdClassifier`'s reading of
    ``T_μ``, so this is exactly the false-positive rate the calibrated
    classifier would realize on these scores.
    """
    scores = sorted(nonmatch_scores)
    if not scores:
        return 0.0
    return (len(scores) - bisect_right(scores, threshold)) / len(scores)


@dataclass(frozen=True)
class Calibration:
    """One resolved threshold calibration, ready to wrap a model.

    Attributes
    ----------
    method:
        ``"conformal"`` or ``"np"``.
    threshold:
        The calibrated ``T_μ`` (``+inf`` when infeasible: nothing is
        ever auto-matched).
    target_fpr:
        The FPR target the threshold was calibrated for.
    alpha:
        Confidence level of the conformal DKW tightening (``None`` for
        the plain marginal guarantee, and for NP calibration).
    n_match / n_nonmatch:
        Calibration-set class sizes.
    feasible:
        Whether the calibration set was large enough to certify the
        target at all (``⌈(n+1)(1-α)⌉ ≤ n`` for conformal).
    calibration_fpr:
        Empirical FPR of the threshold on the calibration set itself.
    set_fingerprint:
        Fingerprint of the calibration inputs — recorded in audit
        manifests so a run's thresholds are traceable to their data.
    """

    method: str
    threshold: float
    target_fpr: float
    alpha: float | None
    n_match: int
    n_nonmatch: int
    feasible: bool
    calibration_fpr: float
    set_fingerprint: str

    def audit_entry(self) -> dict:
        """JSON-serializable record for the audit manifest."""
        return {
            "method": self.method,
            "threshold": self.threshold,
            "target_fpr": self.target_fpr,
            "alpha": self.alpha,
            "n_match": self.n_match,
            "n_nonmatch": self.n_nonmatch,
            "feasible": self.feasible,
            "calibration_fpr": self.calibration_fpr,
            "set_fingerprint": self.set_fingerprint,
        }


def _validate_target(target_fpr: float) -> float:
    target_fpr = float(target_fpr)
    if not 0.0 <= target_fpr <= 1.0:
        raise ValueError(f"target_fpr outside [0, 1]: {target_fpr}")
    return target_fpr


def calibrate_conformal(
    calibration: CalibrationSet,
    target_fpr: float,
    *,
    alpha: float | None = None,
) -> Calibration:
    """Split-conformal quantile threshold over non-match scores.

    With ``n`` calibration non-match scores and rank
    ``k = ⌈(n+1)(1-target_fpr)⌉``, the ``k``-th smallest score is a
    threshold whose exceedance probability for a new exchangeable
    non-match is at most ``target_fpr`` — the ``n+1`` is the
    finite-sample correction that makes the guarantee exact rather
    than asymptotic.  Passing ``alpha`` additionally inflates the
    quantile level by the one-sided DKW margin
    ``sqrt(ln(1/alpha) / 2n)`` so the realized FPR stays below the
    target with probability at least ``1 - alpha`` over the draw of
    the calibration set (not merely in expectation).

    ``k > n`` means the set is too small to certify the target; the
    calibration comes back infeasible with threshold ``+inf`` (nothing
    auto-matches) and :func:`check_safety_gates
    <repro.matching.decision.gates.check_safety_gates>` trips.

    >>> cal = CalibrationSet(
    ...     [CalibrationPair(f"n{i}", i / 100, False)
    ...      for i in range(99)]
    ... )
    >>> calibrate_conformal(cal, 0.1).threshold
    0.89
    """
    target_fpr = _validate_target(target_fpr)
    scores = calibration.nonmatch_scores
    n = len(scores)
    level = 1.0 - target_fpr
    if alpha is not None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha outside (0, 1): {alpha}")
        if n > 0:
            level += math.sqrt(math.log(1.0 / alpha) / (2.0 * n))
    rank = math.ceil((n + 1) * level)
    if n == 0 or rank > n:
        threshold, feasible = math.inf, False
    else:
        threshold, feasible = scores[max(rank, 1) - 1], True
    return Calibration(
        method="conformal",
        threshold=threshold,
        target_fpr=target_fpr,
        alpha=alpha,
        n_match=len(calibration.match_scores),
        n_nonmatch=n,
        feasible=feasible,
        calibration_fpr=empirical_fpr(threshold, scores),
        set_fingerprint=calibration.fingerprint(),
    )


def calibrate_np(
    calibration: CalibrationSet, target_fpr: float
) -> Calibration:
    """Empirical Neyman–Pearson threshold: maximum power at the target.

    The smallest threshold whose empirical FPR on the calibration
    non-match scores is at most *target_fpr* — with ``n`` scores and
    ``a = ⌊target_fpr · n⌋`` allowed exceedances, that is the
    ``(n-a)``-th smallest score (ties at the threshold do not exceed
    it, because classification is strict ``>``).  Monotone by
    construction: a stricter target never lowers the threshold.

    >>> cal = CalibrationSet(
    ...     [CalibrationPair(f"n{i}", i / 100, False)
    ...      for i in range(100)]
    ... )
    >>> calibrate_np(cal, 0.05).threshold
    0.94
    """
    target_fpr = _validate_target(target_fpr)
    scores = calibration.nonmatch_scores
    n = len(scores)
    if n == 0:
        threshold, feasible = math.inf, False
    else:
        allowed = math.floor(target_fpr * n)
        index = n - 1 - allowed
        if index < 0:
            # Every non-match may exceed: any threshold works, the
            # most powerful being "accept everything".
            threshold, feasible = -math.inf, True
        else:
            threshold, feasible = scores[index], True
    return Calibration(
        method="np",
        threshold=threshold,
        target_fpr=target_fpr,
        alpha=None,
        n_match=len(calibration.match_scores),
        n_nonmatch=n,
        feasible=feasible,
        calibration_fpr=empirical_fpr(threshold, scores),
        set_fingerprint=calibration.fingerprint(),
    )


class ForcedUnsureClassifier(ThresholdClassifier):
    """A classifier whose every answer is POSSIBLE (UNSURE).

    Installed by :class:`CalibratedModel` when a safety gate trips:
    thresholds are retained for introspection (margins in reason
    codes stay meaningful), but no pair is ever auto-matched or
    auto-rejected — everything goes to clerical review.
    """

    def __init__(
        self,
        match_threshold: float,
        unmatch_threshold: float | None,
        trips: tuple,
    ) -> None:
        super().__init__(match_threshold, unmatch_threshold)
        self.trips = tuple(trips)

    def classify(self, similarity: float) -> MatchStatus:
        return MatchStatus.POSSIBLE

    def __repr__(self) -> str:
        gates = ",".join(trip.gate for trip in self.trips)
        return (
            f"ForcedUnsureClassifier(T_mu={self.match_threshold:g}, "
            f"T_lambda={self.unmatch_threshold:g}, gates=[{gates}])"
        )


class CalibratedModel:
    """A decision model wrapped with a calibrated classifier.

    Step 1 of Figure 3 (the similarity φ) is the inner model's,
    untouched — which is why the inner model's pushdown floors remain
    *exactly* valid and are forwarded through
    :meth:`attribute_floors`.  Step 2 classifies against the
    calibrated ``T_μ`` (and the retained/supplied ``T_λ``); when any
    safety gate tripped at construction, step 2 is replaced by
    :class:`ForcedUnsureClassifier` and every decision comes back
    POSSIBLE.

    When the calibrated thresholds coincide with the inner model's
    and no gate tripped, the wrapper decides bitwise identically to
    the unwrapped model (pinned by ``tests/test_calibration.py``).
    """

    def __init__(
        self,
        model,
        calibration: Calibration,
        *,
        gate_trips: tuple = (),
        unmatch_threshold: float | None = None,
    ) -> None:
        self._model = model
        self.calibration = calibration
        self.gate_trips = tuple(gate_trips)
        t_mu = calibration.threshold
        if unmatch_threshold is None:
            inner = getattr(model, "classifier", None)
            t_lambda = (
                min(inner.unmatch_threshold, t_mu)
                if inner is not None
                else t_mu
            )
        else:
            t_lambda = float(unmatch_threshold)
        if self.gate_trips:
            self.classifier: ThresholdClassifier = ForcedUnsureClassifier(
                t_mu, t_lambda, self.gate_trips
            )
        else:
            self.classifier = ThresholdClassifier(t_mu, t_lambda)

    @property
    def model(self):
        """The wrapped decision model (φ provider)."""
        return self._model

    @property
    def forced_unsure(self) -> bool:
        """Whether a tripped gate forces every decision to POSSIBLE."""
        return bool(self.gate_trips)

    def similarity(self, vector: ComparisonVector) -> float:
        """φ(c⃗) — exactly the inner model's similarity."""
        return self._model.similarity(vector)

    def decide(self, vector: ComparisonVector) -> Decision:
        """Classify φ(c⃗) with the calibrated (or forcing) classifier."""
        return self.classifier.decide(self.similarity(vector))

    def attribute_floors(self):
        """Forward the inner model's pushdown floors.

        Floors are φ-level invariance points and this wrapper never
        changes φ, only the thresholds it is classified against — so
        the inner floors remain exactly safe (and an inner model
        without floors keeps pruning off).
        """
        supplier = getattr(self._model, "attribute_floors", None)
        return supplier() if callable(supplier) else None

    # ------------------------------------------------------------------
    # Explanations
    # ------------------------------------------------------------------

    def reason(self, decision) -> ReasonCode:
        """The reason code of one decision (or raw similarity)."""
        similarity = getattr(decision, "similarity", decision)
        return categorize_decision(
            float(similarity), self.classifier, model=self._model
        )

    def explain(self, result) -> tuple[DecisionReason, ...]:
        """One :class:`DecisionReason` per decision of a result.

        Totality is guaranteed: every decision yields exactly one
        primary reason, whatever its similarity (±inf included).
        """
        rows = []
        for decision in result.decisions:
            rows.append(
                DecisionReason(
                    left_id=decision.left_id,
                    right_id=decision.right_id,
                    status=decision.status,
                    similarity=decision.similarity,
                    reason=self.reason(decision),
                )
            )
        return tuple(rows)

    def audit_entry(self) -> dict:
        """The manifest record tying a run to its calibration inputs."""
        entry = self.calibration.audit_entry()
        entry["wraps"] = type(self._model).__name__
        entry["match_threshold"] = self.classifier.match_threshold
        entry["unmatch_threshold"] = self.classifier.unmatch_threshold
        entry["gate_trips"] = [
            trip.as_dict() for trip in self.gate_trips
        ]
        return entry

    def __repr__(self) -> str:
        return (
            f"CalibratedModel({self._model!r}, "
            f"{self.calibration.method}@{self.calibration.target_fpr:g}, "
            f"{self.classifier!r})"
        )


def calibrate(
    model,
    calibration_set: CalibrationSet,
    *,
    method: str = "conformal",
    target_fpr: float = 0.05,
    alpha: float | None = None,
    gates=None,
    unmatch_threshold: float | None = None,
) -> CalibratedModel:
    """Calibrate *model*'s match threshold and wrap it, gates checked.

    The one-call entry point: resolves *method* into
    :func:`calibrate_conformal` / :func:`calibrate_np`, runs
    :func:`~repro.matching.decision.gates.check_safety_gates` (pass
    ``gates=None`` for the default gate policy, a configured
    :class:`~repro.matching.decision.gates.SafetyGates` to tune it, or
    ``gates=False`` to skip checking entirely — discouraged outside
    tests), and returns the wrapped model.
    """
    from repro.matching.decision.gates import SafetyGates, check_safety_gates

    if method not in CALIBRATION_METHODS:
        raise ValueError(
            f"unknown calibration method {method!r}; "
            f"expected one of {CALIBRATION_METHODS}"
        )
    if method == "conformal":
        calibration = calibrate_conformal(
            calibration_set, target_fpr, alpha=alpha
        )
    else:
        if alpha is not None:
            raise ValueError("alpha applies to conformal calibration only")
        calibration = calibrate_np(calibration_set, target_fpr)
    if gates is False:
        trips: tuple = ()
    else:
        if gates is None:
            gates = SafetyGates()
        trips = check_safety_gates(
            calibration_set, calibration, gates=gates
        )
    return CalibratedModel(
        model,
        calibration,
        gate_trips=trips,
        unmatch_threshold=unmatch_threshold,
    )


__all__ = [
    "CALIBRATION_METHODS",
    "Calibration",
    "CalibrationPair",
    "CalibrationSet",
    "CalibratedModel",
    "ForcedUnsureClassifier",
    "calibrate",
    "calibrate_conformal",
    "calibrate_np",
    "empirical_fpr",
]
