"""Decision models (Section III-D) and their estimation routines."""

from repro.matching.decision.base import (
    CombinedDecisionModel,
    Decision,
    DecisionModel,
    MatchStatus,
    ThresholdClassifier,
)
from repro.matching.decision.calibration import (
    CALIBRATION_METHODS,
    Calibration,
    CalibrationPair,
    CalibrationSet,
    CalibratedModel,
    ForcedUnsureClassifier,
    calibrate,
    calibrate_conformal,
    calibrate_np,
    empirical_fpr,
)
from repro.matching.decision.em import EMEstimate, estimate_em
from repro.matching.decision.fellegi_sunter import (
    FellegiSunterModel,
    agreement_pattern,
    select_thresholds,
)
from repro.matching.decision.gates import (
    GateTrip,
    SafetyGates,
    check_safety_gates,
)
from repro.matching.decision.reasons import (
    DecisionReason,
    ReasonCategory,
    ReasonCode,
    categorize_decision,
)
from repro.matching.decision.rules import (
    CertaintyCombination,
    Condition,
    IdentificationRule,
    RuleBasedModel,
    paper_example_rule,
)

__all__ = [
    "CALIBRATION_METHODS",
    "Calibration",
    "CalibrationPair",
    "CalibrationSet",
    "CalibratedModel",
    "CertaintyCombination",
    "CombinedDecisionModel",
    "Condition",
    "Decision",
    "DecisionModel",
    "DecisionReason",
    "EMEstimate",
    "FellegiSunterModel",
    "ForcedUnsureClassifier",
    "GateTrip",
    "IdentificationRule",
    "MatchStatus",
    "ReasonCategory",
    "ReasonCode",
    "RuleBasedModel",
    "SafetyGates",
    "ThresholdClassifier",
    "agreement_pattern",
    "calibrate",
    "calibrate_conformal",
    "calibrate_np",
    "categorize_decision",
    "check_safety_gates",
    "empirical_fpr",
    "estimate_em",
    "paper_example_rule",
    "select_thresholds",
]
