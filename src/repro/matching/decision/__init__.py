"""Decision models (Section III-D) and their estimation routines."""

from repro.matching.decision.base import (
    CombinedDecisionModel,
    Decision,
    DecisionModel,
    MatchStatus,
    ThresholdClassifier,
)
from repro.matching.decision.em import EMEstimate, estimate_em
from repro.matching.decision.fellegi_sunter import (
    FellegiSunterModel,
    agreement_pattern,
    select_thresholds,
)
from repro.matching.decision.rules import (
    CertaintyCombination,
    Condition,
    IdentificationRule,
    RuleBasedModel,
    paper_example_rule,
)

__all__ = [
    "CertaintyCombination",
    "CombinedDecisionModel",
    "Condition",
    "Decision",
    "DecisionModel",
    "EMEstimate",
    "FellegiSunterModel",
    "IdentificationRule",
    "MatchStatus",
    "RuleBasedModel",
    "ThresholdClassifier",
    "agreement_pattern",
    "estimate_em",
    "paper_example_rule",
    "select_thresholds",
]
