"""Probabilistic decision model: the Fellegi–Sunter theory ([16], [25]).

Section III-D defines, for each tuple pair, the conditional probabilities

* ``m(c⃗) = P(c⃗ | (t1, t2) ∈ M)`` — Equation 1,
* ``u(c⃗) = P(c⃗ | (t1, t2) ∈ U)`` — Equation 2,

and classifies by the matching weight ``R = m(c⃗)/u(c⃗)`` against the
thresholds ``T_μ`` and ``T_λ`` (Figure 2): match if ``R > T_μ``,
non-match if ``R < T_λ``, otherwise possible match (clerical review).

Following standard record-linkage practice ([26], [27]) we assume
conditional independence of per-attribute *agreement bits*: the
comparison vector is reduced to γ ∈ {0,1}ⁿ via an agreement threshold,
and ``m(γ) = Π mᵢ^γᵢ (1-mᵢ)^(1-γᵢ)`` (analogously ``u``).

m/u parameters can be

* supplied directly,
* estimated from labeled pairs (:meth:`FellegiSunterModel.fit_labeled`),
* estimated without labels via EM (:mod:`repro.matching.decision.em`).

Threshold selection from tolerable error rates is provided by
:func:`select_thresholds` ([25]'s decision-rule construction on the
discrete weight distribution).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence

from repro.matching.comparison import ComparisonVector
from repro.matching.decision.base import (
    Decision,
    ThresholdClassifier,
)
from repro.matching.pushdown import SimilarityFloors


def agreement_pattern(
    vector: ComparisonVector, threshold: float = 0.85
) -> tuple[bool, ...]:
    """Reduce c⃗ to the binary agreement vector γ."""
    return tuple(c >= threshold for c in vector.values)


class FellegiSunterModel:
    """The Fellegi–Sunter decision model with conditional independence.

    Parameters
    ----------
    m_probabilities / u_probabilities:
        Per-attribute probabilities that the attribute *agrees* given the
        pair is a true match / true non-match.  All values in (0, 1).
    classifier:
        Thresholds on the matching weight ``R`` (non-normalized!).  Note
        that R is a likelihood *ratio*: sensible thresholds satisfy
        ``T_λ < 1 < T_μ`` in the ratio domain.
    agreement_threshold:
        Similarity level from which an attribute counts as agreeing.
    use_log:
        Work with ``log2 R`` instead of ``R`` (numerically safer for many
        attributes); thresholds are then in the log domain.

    >>> model = FellegiSunterModel(
    ...     m_probabilities={"name": 0.9, "job": 0.6},
    ...     u_probabilities={"name": 0.05, "job": 0.2},
    ...     classifier=ThresholdClassifier(10.0, 1.0),
    ...     agreement_threshold=0.8,
    ... )
    >>> both_agree = ComparisonVector(("name", "job"), (0.95, 1.0))
    >>> round(model.matching_weight(both_agree))  # (0.9·0.6)/(0.05·0.2)
    54
    >>> model.decide(both_agree).status.value
    'm'
    >>> model.attribute_floors()  # threshold pushdown (PR 4)
    SimilarityFloors(—, default=0.8)
    """

    def __init__(
        self,
        m_probabilities: Mapping[str, float],
        u_probabilities: Mapping[str, float],
        classifier: ThresholdClassifier,
        *,
        agreement_threshold: float = 0.85,
        use_log: bool = False,
    ) -> None:
        if set(m_probabilities) != set(u_probabilities):
            raise ValueError(
                "m- and u-probabilities must cover the same attributes"
            )
        for label, probs in (
            ("m", m_probabilities),
            ("u", u_probabilities),
        ):
            for attr, prob in probs.items():
                if not 0.0 < prob < 1.0:
                    raise ValueError(
                        f"{label}-probability of {attr!r} must lie in (0, 1),"
                        f" got {prob}"
                    )
        if not 0.0 < agreement_threshold <= 1.0:
            raise ValueError(
                "agreement_threshold must lie in (0, 1], got "
                f"{agreement_threshold}"
            )
        self._m = {str(k): float(v) for k, v in m_probabilities.items()}
        self._u = {str(k): float(v) for k, v in u_probabilities.items()}
        self.classifier = classifier
        self._agreement_threshold = agreement_threshold
        self._use_log = use_log

    # ------------------------------------------------------------------
    # Probabilities and weights
    # ------------------------------------------------------------------

    @property
    def attributes(self) -> tuple[str, ...]:
        """Attributes covered by the m/u parameters."""
        return tuple(self._m.keys())

    @property
    def agreement_threshold(self) -> float:
        """Similarity level from which an attribute counts as agreeing."""
        return self._agreement_threshold

    def attribute_floors(self) -> SimilarityFloors:
        """Pushdown floors: the agreement threshold, for every attribute.

        Equations 1–2 consume the comparison vector only through the
        binary agreement pattern ``γ_a = [c_a ≥ agreement_threshold]``,
        so any similarity below the agreement threshold produces
        bitwise the same matching weight ``R`` as 0.0 does — which is
        exactly the banded kernels' "below cutoff" answer.  The floor
        is therefore the agreement threshold, for listed and (the
        conservative default) unlisted attributes alike; see
        :mod:`repro.matching.pushdown` for the safety argument.
        """
        return SimilarityFloors.uniform(self._agreement_threshold)

    @property
    def m_probabilities(self) -> dict[str, float]:
        """Copy of the per-attribute m-probabilities."""
        return dict(self._m)

    @property
    def u_probabilities(self) -> dict[str, float]:
        """Copy of the per-attribute u-probabilities."""
        return dict(self._u)

    def m_probability(self, vector: ComparisonVector) -> float:
        """Equation 1 under conditional independence: ``P(γ(c⃗) | M)``."""
        return self._pattern_probability(vector, self._m)

    def u_probability(self, vector: ComparisonVector) -> float:
        """Equation 2 under conditional independence: ``P(γ(c⃗) | U)``."""
        return self._pattern_probability(vector, self._u)

    def _pattern_probability(
        self, vector: ComparisonVector, params: Mapping[str, float]
    ) -> float:
        probability = 1.0
        for attribute, similarity in zip(vector.attributes, vector.values):
            if attribute not in params:
                raise KeyError(
                    f"no m/u probabilities for attribute {attribute!r}"
                )
            p = params[attribute]
            if similarity >= self._agreement_threshold:
                probability *= p
            else:
                probability *= 1.0 - p
        return probability

    def matching_weight(self, vector: ComparisonVector) -> float:
        """``R = m(c⃗)/u(c⃗)`` (or ``log2 R`` with ``use_log=True``)."""
        m = self.m_probability(vector)
        u = self.u_probability(vector)
        if self._use_log:
            return math.log2(m) - math.log2(u)
        return m / u

    # ------------------------------------------------------------------
    # DecisionModel protocol
    # ------------------------------------------------------------------

    def similarity(self, vector: ComparisonVector) -> float:
        """Step 1 of Figure 3 — the (non-normalized) matching weight."""
        return self.matching_weight(vector)

    def decide(self, vector: ComparisonVector) -> Decision:
        """Classify by R against T_μ / T_λ (Figure 2)."""
        return self.classifier.decide(self.matching_weight(vector))

    def forcing_term(self, similarity: float) -> str | None:
        """Name the agreement pattern γ whose weight equals *similarity*.

        R depends on the comparison vector only through γ, so the
        decided weight identifies the pattern (up to weight ties, where
        the pattern with most agreements wins deterministically).  The
        enumeration is 2^n; models with more than 12 attributes skip
        the recovery and return ``None``.
        """
        attributes = self.attributes
        if len(attributes) > 12:
            return None
        candidates: list[tuple[int, str]] = []
        for mask in range(1 << len(attributes)):
            m = u = 1.0
            agreeing: list[str] = []
            for index, attribute in enumerate(attributes):
                if mask >> index & 1:
                    m *= self._m[attribute]
                    u *= self._u[attribute]
                    agreeing.append(attribute)
                else:
                    m *= 1.0 - self._m[attribute]
                    u *= 1.0 - self._u[attribute]
            weight = math.log2(m) - math.log2(u) if self._use_log else m / u
            if weight == similarity:
                candidates.append(
                    (len(agreeing), "agree(" + ",".join(agreeing) + ")")
                )
        if not candidates:
            return None
        return max(candidates)[1]

    # ------------------------------------------------------------------
    # Estimation from labeled data
    # ------------------------------------------------------------------

    @classmethod
    def fit_labeled(
        cls,
        match_vectors: Sequence[ComparisonVector],
        unmatch_vectors: Sequence[ComparisonVector],
        classifier: ThresholdClassifier,
        *,
        agreement_threshold: float = 0.85,
        smoothing: float = 0.5,
        use_log: bool = False,
    ) -> "FellegiSunterModel":
        """Estimate mᵢ/uᵢ by (smoothed) counting on labeled pairs.

        *smoothing* is the additive (Laplace/Jeffreys) pseudo-count that
        keeps all probabilities inside (0, 1) even for degenerate samples.
        """
        if not match_vectors or not unmatch_vectors:
            raise ValueError("need labeled pairs of both classes")
        attributes = match_vectors[0].attributes
        m_est: dict[str, float] = {}
        u_est: dict[str, float] = {}
        for index, attribute in enumerate(attributes):
            m_agree = sum(
                1
                for vector in match_vectors
                if vector[index] >= agreement_threshold
            )
            u_agree = sum(
                1
                for vector in unmatch_vectors
                if vector[index] >= agreement_threshold
            )
            m_est[attribute] = (m_agree + smoothing) / (
                len(match_vectors) + 2 * smoothing
            )
            u_est[attribute] = (u_agree + smoothing) / (
                len(unmatch_vectors) + 2 * smoothing
            )
        return cls(
            m_est,
            u_est,
            classifier,
            agreement_threshold=agreement_threshold,
            use_log=use_log,
        )

    def __repr__(self) -> str:
        return (
            f"FellegiSunterModel({len(self._m)} attributes, "
            f"log={self._use_log}, {self.classifier!r})"
        )


def select_thresholds(
    weights_matches: Iterable[float],
    weights_unmatches: Iterable[float],
    *,
    false_match_rate: float = 0.01,
    false_unmatch_rate: float = 0.01,
) -> ThresholdClassifier:
    """Pick ``T_μ``/``T_λ`` from tolerable error rates (Fellegi–Sunter).

    Given matching-weight samples of true matches and true non-matches
    (e.g. from a labeled calibration set), choose

    * ``T_μ`` as the smallest weight such that the fraction of *non-match*
      weights above it is at most *false_match_rate*, and
    * ``T_λ`` as the largest weight such that the fraction of *match*
      weights below it is at most *false_unmatch_rate*.

    If the two constraints cross (perfectly separable data), both
    thresholds collapse to the crossing point and the possible-match band
    is empty.
    """
    match_sorted = sorted(weights_matches)
    unmatch_sorted = sorted(weights_unmatches)
    if not match_sorted or not unmatch_sorted:
        raise ValueError("need weight samples of both classes")
    if not 0.0 <= false_match_rate <= 1.0:
        raise ValueError(f"false_match_rate outside [0, 1]: {false_match_rate}")
    if not 0.0 <= false_unmatch_rate <= 1.0:
        raise ValueError(
            f"false_unmatch_rate outside [0, 1]: {false_unmatch_rate}"
        )

    # T_mu: walk the non-match weights from above until the allowed tail
    # mass is exceeded.
    allowed_fm = int(false_match_rate * len(unmatch_sorted))
    t_mu = unmatch_sorted[-1 - allowed_fm] if allowed_fm < len(
        unmatch_sorted
    ) else unmatch_sorted[0]

    # T_lambda: walk the match weights from below analogously.
    allowed_fu = int(false_unmatch_rate * len(match_sorted))
    t_lambda = match_sorted[allowed_fu] if allowed_fu < len(
        match_sorted
    ) else match_sorted[-1]

    if t_lambda > t_mu:
        midpoint = 0.5 * (t_lambda + t_mu)
        t_lambda = t_mu = midpoint
    return ThresholdClassifier(t_mu, t_lambda)
