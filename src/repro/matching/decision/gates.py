"""Safety gates: refuse to auto-decide on untrustworthy calibrations.

A calibrated threshold is only as good as the calibration set behind
it.  When that set is too small, degenerate, or fails a held-out drift
check, the honest answer is *UNSURE* — so
:func:`check_safety_gates` inspects a :class:`Calibration
<repro.matching.decision.calibration.Calibration>` against a
:class:`SafetyGates` policy and returns the tripped gates; any trip
makes :func:`calibrate <repro.matching.decision.calibration.calibrate>`
install a :class:`ForcedUnsureClassifier
<repro.matching.decision.calibration.ForcedUnsureClassifier>` that
sends every pair to clerical review instead of silently deciding with
a threshold nobody should trust.

All checks are deterministic: the drift gate re-splits the calibration
set with a fixed seed, so the same inputs trip the same gates — which
is what lets the chaos suite assert gates trip *reproducibly* under
injected faults.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Gate names, as they appear in trips, reason codes and manifests.
GATE_MIN_CALIBRATION_SIZE = "min_calibration_size"
GATE_MAX_FPR_DRIFT = "max_fpr_drift"
GATE_DEGENERATE_SCORES = "degenerate_score_distribution"
GATE_INFEASIBLE = "infeasible_calibration"


@dataclass(frozen=True)
class GateTrip:
    """One tripped safety gate: which, what was observed, what's allowed."""

    gate: str
    observed: float
    limit: float
    detail: str = ""

    def as_dict(self) -> dict:
        return {
            "gate": self.gate,
            "observed": self.observed,
            "limit": self.limit,
            "detail": self.detail,
        }

    def __str__(self) -> str:
        suffix = f" ({self.detail})" if self.detail else ""
        return (
            f"{self.gate}: observed {self.observed:g}, "
            f"limit {self.limit:g}{suffix}"
        )


@dataclass(frozen=True)
class SafetyGates:
    """The gate policy: when is a calibration trustworthy enough?

    Attributes
    ----------
    min_calibration_size:
        Minimum number of labeled *non-match* pairs — the class the
        FPR guarantee quantifies over.  Below it, the quantile is too
        coarse to mean anything.
    max_fpr_drift:
        Allowed excess of the held-out empirical FPR over the target:
        the set is re-split (seeded), the threshold re-calibrated on
        the fit part, and its FPR measured on the holdout; exceeding
        ``target_fpr + max_fpr_drift`` trips.  ``None`` disables the
        drift check.
    min_score_spread:
        Minimum spread (max − min) of the non-match scores; a
        (near-)constant score distribution cannot be thresholded
        meaningfully.
    holdout_fraction / seed:
        Deterministic split parameters of the drift check.
    """

    min_calibration_size: int = 30
    max_fpr_drift: float | None = 0.1
    min_score_spread: float = 1e-9
    holdout_fraction: float = 0.5
    seed: int = 20100301

    def __post_init__(self) -> None:
        if self.min_calibration_size < 1:
            raise ValueError(
                f"min_calibration_size must be >= 1, "
                f"got {self.min_calibration_size}"
            )
        if self.max_fpr_drift is not None and self.max_fpr_drift < 0.0:
            raise ValueError(
                f"max_fpr_drift must be >= 0, got {self.max_fpr_drift}"
            )
        if self.min_score_spread < 0.0:
            raise ValueError(
                f"min_score_spread must be >= 0, got {self.min_score_spread}"
            )
        if not 0.0 < self.holdout_fraction < 1.0:
            raise ValueError(
                f"holdout_fraction outside (0, 1): {self.holdout_fraction}"
            )


def check_safety_gates(
    calibration_set,
    calibration,
    *,
    gates: SafetyGates | None = None,
) -> tuple[GateTrip, ...]:
    """Run every gate; return the trips (empty tuple ⇒ trustworthy).

    Checks, in order: calibration-set size, degenerate score
    distribution, calibration feasibility, and held-out FPR drift.
    The drift check only runs when the earlier gates passed — re-
    calibrating on a half of an already-too-small or degenerate set
    would just duplicate those trips with noisier evidence.
    """
    from repro.matching.decision.calibration import (
        calibrate_conformal,
        calibrate_np,
        empirical_fpr,
    )

    if gates is None:
        gates = SafetyGates()
    trips: list[GateTrip] = []

    nonmatch = calibration_set.nonmatch_scores
    if len(nonmatch) < gates.min_calibration_size:
        trips.append(
            GateTrip(
                gate=GATE_MIN_CALIBRATION_SIZE,
                observed=float(len(nonmatch)),
                limit=float(gates.min_calibration_size),
                detail="labeled non-match pairs",
            )
        )

    if nonmatch:
        spread = nonmatch[-1] - nonmatch[0]
        if spread < gates.min_score_spread:
            trips.append(
                GateTrip(
                    gate=GATE_DEGENERATE_SCORES,
                    observed=spread,
                    limit=gates.min_score_spread,
                    detail="non-match score spread (max - min)",
                )
            )

    if not calibration.feasible:
        trips.append(
            GateTrip(
                gate=GATE_INFEASIBLE,
                observed=float(calibration.n_nonmatch),
                limit=float(
                    # Smallest conformal-feasible n for the target:
                    # ceil((n+1)(1-target)) <= n  ⇔  n >= (1-t)/t.
                    0.0
                    if calibration.target_fpr <= 0.0
                    else (1.0 - calibration.target_fpr)
                    / calibration.target_fpr
                ),
                detail=(
                    "calibration set cannot certify target_fpr="
                    f"{calibration.target_fpr:g}"
                ),
            )
        )

    if gates.max_fpr_drift is not None and not trips:
        fit, holdout = calibration_set.split(
            gates.holdout_fraction, gates.seed
        )
        if fit.nonmatch_scores and holdout.nonmatch_scores:
            if calibration.method == "np":
                refit = calibrate_np(fit, calibration.target_fpr)
            else:
                refit = calibrate_conformal(
                    fit, calibration.target_fpr, alpha=calibration.alpha
                )
            if refit.feasible:
                holdout_fpr = empirical_fpr(
                    refit.threshold, holdout.nonmatch_scores
                )
                limit = calibration.target_fpr + gates.max_fpr_drift
                if holdout_fpr > limit:
                    trips.append(
                        GateTrip(
                            gate=GATE_MAX_FPR_DRIFT,
                            observed=holdout_fpr,
                            limit=limit,
                            detail=(
                                "held-out FPR of a re-calibrated "
                                "threshold (seeded split)"
                            ),
                        )
                    )

    return tuple(trips)


__all__ = [
    "GATE_DEGENERATE_SCORES",
    "GATE_INFEASIBLE",
    "GATE_MAX_FPR_DRIFT",
    "GATE_MIN_CALIBRATION_SIZE",
    "GateTrip",
    "SafetyGates",
    "check_safety_gates",
]
