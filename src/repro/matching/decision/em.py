"""EM estimation of Fellegi–Sunter parameters without labels ([26]).

Winkler's application of the EM algorithm to record linkage treats the
match status of every compared pair as a latent binary variable.  Under
per-attribute conditional independence the complete-data likelihood of a
binary agreement pattern γ is

``P(γ) = π · Π mᵢ^γᵢ (1-mᵢ)^(1-γᵢ)  +  (1-π) · Π uᵢ^γᵢ (1-uᵢ)^(1-γᵢ)``

with π the match prevalence.  EM alternates

* **E-step** — posterior match responsibility of every pattern,
* **M-step** — re-estimate π, mᵢ, uᵢ from responsibility-weighted counts,

and converges monotonically in likelihood.  The routine operates on the
*distinct* agreement patterns with multiplicities, so its per-iteration
cost is ``O(2ⁿ)``-bounded rather than ``O(#pairs)``.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.matching.comparison import ComparisonVector
from repro.matching.decision.base import ThresholdClassifier
from repro.matching.decision.fellegi_sunter import (
    FellegiSunterModel,
    agreement_pattern,
)


@dataclass(frozen=True)
class EMEstimate:
    """Result of an EM run.

    Attributes
    ----------
    m_probabilities / u_probabilities:
        Estimated per-attribute agreement probabilities.
    prevalence:
        Estimated fraction π of true matches among the compared pairs.
    log_likelihood:
        Final observed-data log-likelihood.
    iterations:
        Number of EM iterations performed.
    converged:
        Whether the log-likelihood improvement fell below the tolerance
        before the iteration cap.
    agreement_threshold:
        The similarity level the estimation reduced comparison vectors
        with — recorded so :meth:`to_model` builds a model that reads
        agreement exactly the way the parameters were fitted.
    """

    m_probabilities: dict[str, float]
    u_probabilities: dict[str, float]
    prevalence: float
    log_likelihood: float
    iterations: int
    converged: bool
    agreement_threshold: float = 0.85

    def to_model(
        self,
        classifier: ThresholdClassifier,
        *,
        use_log: bool = False,
    ) -> FellegiSunterModel:
        """The Fellegi–Sunter decision model this estimate implies.

        The model inherits the estimate's m/u parameters *and* its
        agreement threshold, so EM-estimated models take part in
        threshold pushdown exactly like hand-parameterized ones:
        ``model.attribute_floors()`` exposes the agreement threshold as
        the per-attribute ``min_similarity`` cutoff (see
        :mod:`repro.matching.pushdown`).

        >>> from repro.matching.comparison import ComparisonVector
        >>> vectors = (
        ...     [ComparisonVector(("name",), (0.95,))] * 20
        ...     + [ComparisonVector(("name",), (0.10,))] * 80
        ... )
        >>> estimate = estimate_em(vectors, agreement_threshold=0.9)
        >>> model = estimate.to_model(ThresholdClassifier(2.0, 0.5))
        >>> model.attribute_floors().floor("name")
        0.9
        """
        return FellegiSunterModel(
            self.m_probabilities,
            self.u_probabilities,
            classifier,
            agreement_threshold=self.agreement_threshold,
            use_log=use_log,
        )


def _clip(p: float, epsilon: float = 1e-6) -> float:
    """Keep probabilities strictly inside (0, 1)."""
    return min(max(p, epsilon), 1.0 - epsilon)


def _pattern_likelihood(
    pattern: tuple[bool, ...], params: Sequence[float]
) -> float:
    likelihood = 1.0
    for agrees, p in zip(pattern, params):
        likelihood *= p if agrees else (1.0 - p)
    return likelihood


def estimate_em(
    vectors: Iterable[ComparisonVector],
    *,
    agreement_threshold: float = 0.85,
    initial_m: float = 0.9,
    initial_u: float = 0.1,
    initial_prevalence: float = 0.1,
    max_iterations: int = 200,
    tolerance: float = 1e-9,
) -> EMEstimate:
    """Run EM over the agreement patterns of unlabeled comparison vectors.

    Parameters mirror Winkler's classic setup; the defaults (m₀=0.9,
    u₀=0.1, π₀=0.1) are the customary symmetric starting point that breaks
    the label-swap symmetry towards "matches agree".

    Raises
    ------
    ValueError
        If no comparison vectors are supplied.
    """
    vector_list = list(vectors)
    if not vector_list:
        raise ValueError("EM needs at least one comparison vector")
    attributes = vector_list[0].attributes
    arity = len(attributes)

    pattern_counts = Counter(
        agreement_pattern(vector, agreement_threshold)
        for vector in vector_list
    )
    total = sum(pattern_counts.values())

    m = [_clip(initial_m)] * arity
    u = [_clip(initial_u)] * arity
    prevalence = _clip(initial_prevalence)

    log_likelihood = -math.inf
    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        # E-step: responsibility of the match class per distinct pattern.
        responsibilities: dict[tuple[bool, ...], float] = {}
        new_log_likelihood = 0.0
        for pattern, count in pattern_counts.items():
            match_term = prevalence * _pattern_likelihood(pattern, m)
            unmatch_term = (1.0 - prevalence) * _pattern_likelihood(
                pattern, u
            )
            denominator = match_term + unmatch_term
            responsibilities[pattern] = (
                match_term / denominator if denominator > 0.0 else 0.5
            )
            new_log_likelihood += count * math.log(max(denominator, 1e-300))

        # M-step: responsibility-weighted counts.
        match_mass = sum(
            responsibilities[pattern] * count
            for pattern, count in pattern_counts.items()
        )
        unmatch_mass = total - match_mass
        prevalence = _clip(match_mass / total)
        for index in range(arity):
            agree_match = sum(
                responsibilities[pattern] * count
                for pattern, count in pattern_counts.items()
                if pattern[index]
            )
            agree_unmatch = sum(
                (1.0 - responsibilities[pattern]) * count
                for pattern, count in pattern_counts.items()
                if pattern[index]
            )
            m[index] = _clip(
                agree_match / match_mass if match_mass > 0.0 else 0.5
            )
            u[index] = _clip(
                agree_unmatch / unmatch_mass if unmatch_mass > 0.0 else 0.5
            )

        if new_log_likelihood - log_likelihood < tolerance and iteration > 1:
            log_likelihood = new_log_likelihood
            converged = True
            break
        log_likelihood = new_log_likelihood

    # Canonical orientation: the match class is the agreeing one.  EM is
    # symmetric under swapping (m, π) with (u, 1-π); flip if needed.
    if sum(m) < sum(u):
        m, u = u, m
        prevalence = 1.0 - prevalence

    return EMEstimate(
        m_probabilities=dict(zip(attributes, m)),
        u_probabilities=dict(zip(attributes, u)),
        prevalence=prevalence,
        log_likelihood=log_likelihood,
        iterations=iteration,
        converged=converged,
        agreement_threshold=agreement_threshold,
    )
