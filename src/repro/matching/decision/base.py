"""Decision-model fundamentals: match status, thresholds, protocol.

Section III-D: the comparison vector is input to a decision model that
assigns a tuple pair to matching tuples (M), unmatching tuples (U) or
possibly matching tuples (P); the result is the matching value
``η(t1, t2) ∈ {m, p, u}``.

Figure 3 decomposes every decision model into (1) a combination function
φ producing ``sim(t1, t2)`` and (2) a threshold classification into
{M, P, U}.  :class:`ThresholdClassifier` implements step 2 for both the
two-threshold case (T_λ < T_μ, Figure 2) and the single-threshold case
(knowledge-based techniques usually drop P).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.matching.comparison import ComparisonVector


class MatchStatus(enum.Enum):
    """The matching value η ∈ {m, p, u}."""

    MATCH = "m"
    POSSIBLE = "p"
    UNMATCH = "u"

    @property
    def numeric(self) -> int:
        """The paper's numeric coding for expected matching results.

        Section IV-B (last paragraph): "each matching result is considered
        as one of the following numbers {m = 2, p = 1, u = 0}".
        """
        return {"m": 2, "p": 1, "u": 0}[self.value]

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Decision:
    """Outcome of deciding one tuple pair.

    Attributes
    ----------
    status:
        The matching value η(t1, t2).
    similarity:
        The similarity degree sim(t1, t2) that was classified.  May be
        non-normalized (matching weights) or even infinite (decision-based
        derivation with P(u) = 0).
    """

    status: MatchStatus
    similarity: float

    @property
    def is_match(self) -> bool:
        """Whether the pair was declared a duplicate."""
        return self.status is MatchStatus.MATCH

    @property
    def is_possible(self) -> bool:
        """Whether the pair needs clerical review."""
        return self.status is MatchStatus.POSSIBLE

    @property
    def is_unmatch(self) -> bool:
        """Whether the pair was declared distinct."""
        return self.status is MatchStatus.UNMATCH


class ThresholdClassifier:
    """Classify a similarity degree into {M, P, U} with one or two thresholds.

    Parameters
    ----------
    match_threshold:
        ``T_μ`` — similarities strictly above are matches.  (The paper
        uses ``R > T_μ``; we follow that strict reading and likewise
        ``R < T_λ`` for non-matches, so values exactly on a threshold are
        possible matches.)
    unmatch_threshold:
        ``T_λ`` — similarities strictly below are non-matches.  Pass
        ``None`` (or the same value as *match_threshold*) for a
        single-threshold classifier without a possible-match set.
    """

    def __init__(
        self,
        match_threshold: float,
        unmatch_threshold: float | None = None,
    ) -> None:
        if unmatch_threshold is None:
            unmatch_threshold = match_threshold
        if math.isnan(match_threshold) or math.isnan(unmatch_threshold):
            raise ValueError("thresholds must not be NaN")
        if unmatch_threshold > match_threshold:
            raise ValueError(
                f"T_λ={unmatch_threshold} must not exceed T_μ={match_threshold}"
            )
        self.match_threshold = float(match_threshold)
        self.unmatch_threshold = float(unmatch_threshold)

    @property
    def supports_possible(self) -> bool:
        """Whether a possible-match band exists (T_λ < T_μ)."""
        return self.unmatch_threshold < self.match_threshold

    def classify(self, similarity: float) -> MatchStatus:
        """η from sim: > T_μ ⇒ m, < T_λ ⇒ u, else p.

        With a single threshold the possible band collapses to the exact
        threshold value; values equal to it classify as possible, matching
        the paper's strict inequalities.
        """
        if similarity > self.match_threshold:
            return MatchStatus.MATCH
        if similarity < self.unmatch_threshold:
            return MatchStatus.UNMATCH
        return MatchStatus.POSSIBLE

    def decide(self, similarity: float) -> Decision:
        """Bundle :meth:`classify` with the classified value."""
        return Decision(self.classify(similarity), similarity)

    def __repr__(self) -> str:
        return (
            f"ThresholdClassifier(T_mu={self.match_threshold:g}, "
            f"T_lambda={self.unmatch_threshold:g})"
        )


@runtime_checkable
class DecisionModel(Protocol):
    """A complete decision model: comparison vector → decision.

    Implementations follow Figure 3: combination function plus threshold
    classification.  They expose their classifier so x-tuple derivations
    (Figure 6, right) can reuse the per-alternative thresholds.
    """

    classifier: ThresholdClassifier

    def similarity(
        self, vector: ComparisonVector
    ) -> float:  # pragma: no cover
        """Step 1: sim(t1, t2) = φ(c⃗)."""
        ...

    def decide(self, vector: ComparisonVector) -> Decision:  # pragma: no cover
        """Steps 1+2: classify the pair."""
        ...


class CombinedDecisionModel:
    """The generic Figure-3 decision model: φ then thresholds.

    Parameters
    ----------
    combination:
        The combination function φ (see :mod:`repro.matching.combination`).
    classifier:
        The threshold classifier for step 2.
    name:
        Optional label for reports.
    """

    def __init__(
        self,
        combination,
        classifier: ThresholdClassifier,
        *,
        name: str = "combined",
    ) -> None:
        self._combination = combination
        self.classifier = classifier
        self.name = name

    def similarity(self, vector: ComparisonVector) -> float:
        """sim(t1, t2) = φ(c⃗)."""
        return self._combination(vector)

    def decide(self, vector: ComparisonVector) -> Decision:
        """Classify the pair based on φ(c⃗)."""
        return self.classifier.decide(self.similarity(vector))

    def attribute_floors(self):
        """Pushdown floors, when the combination function is prunable.

        A combined model is only as invariant as its φ: a step-function
        combiner like
        :class:`~repro.matching.combination.LogLikelihoodRatio` exposes
        its own ``attribute_floors()`` and the model forwards them; a
        continuous combiner (``WeightedSum``, ``Average``, …) observes
        every similarity bit, so no floor is safe and the model returns
        ``None`` — the pipeline then keeps the exact path (see
        :func:`repro.matching.pushdown.derive_floors`).
        """
        supplier = getattr(self._combination, "attribute_floors", None)
        return supplier() if callable(supplier) else None

    def __repr__(self) -> str:
        return (
            f"CombinedDecisionModel({self.name!r}, {self._combination!r}, "
            f"{self.classifier!r})"
        )
