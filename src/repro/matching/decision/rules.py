"""Knowledge-based decision model: identification rules (Figure 1).

Section III-D, knowledge-based techniques: "domain experts define
identification rules … conditions when two tuples are considered
duplicates with a given confidence (certainty factor)."  The paper's
example rule:

    IF name > threshold1 AND job > threshold2
    THEN DUPLICATES with CERTAINTY=0.8

"Ultimately, if the resulting certainty is greater than a third,
user-defined threshold separating M and U, the tuple pair is considered
to be a duplicate (the set P is usually not considered in works on these
techniques)."

A :class:`RuleBasedModel` therefore evaluates a rule set against a
comparison vector, combines the certainties of all firing rules, and
classifies with a single threshold by default (two thresholds remain
possible — useful for the decision-based x-tuple derivation which needs a
possible band).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.matching.comparison import ComparisonVector
from repro.matching.decision.base import (
    Decision,
    ThresholdClassifier,
)
from repro.matching.pushdown import SimilarityFloors


@dataclass(frozen=True)
class Condition:
    """One conjunct of a rule: ``attribute > threshold``.

    The paper's rules compare attribute similarities strictly against
    expert-chosen thresholds; *inclusive* switches to ``>=`` for corner
    cases where a similarity of exactly 1.0 must fire a rule with
    threshold 1.0.
    """

    attribute: str
    threshold: float
    inclusive: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError(
                f"condition threshold for {self.attribute!r} outside "
                f"[0, 1]: {self.threshold}"
            )

    def holds(self, vector: ComparisonVector) -> bool:
        """Whether the condition is satisfied by the comparison vector."""
        similarity = vector.similarity(self.attribute)
        if self.inclusive:
            return similarity >= self.threshold
        return similarity > self.threshold

    def pretty(self) -> str:
        """Figure-1 style rendering."""
        op = ">=" if self.inclusive else ">"
        return f"{self.attribute} {op} {self.threshold:g}"


@dataclass(frozen=True)
class IdentificationRule:
    """A conjunctive rule with a certainty factor (Figure 1).

    All conditions must hold for the rule to fire; a firing rule asserts
    "DUPLICATES with CERTAINTY=<certainty>".
    """

    conditions: tuple[Condition, ...]
    certainty: float
    name: str = "rule"

    def __post_init__(self) -> None:
        if not self.conditions:
            raise ValueError(f"{self.name}: a rule needs conditions")
        if not 0.0 < self.certainty <= 1.0:
            raise ValueError(
                f"{self.name}: certainty must lie in (0, 1], "
                f"got {self.certainty}"
            )

    @classmethod
    def build(
        cls,
        conditions: Iterable[tuple[str, float]] | Iterable[Condition],
        certainty: float,
        *,
        name: str = "rule",
    ) -> "IdentificationRule":
        """Build from ``(attribute, threshold)`` pairs or conditions."""
        normalized: list[Condition] = []
        for item in conditions:
            if isinstance(item, Condition):
                normalized.append(item)
            else:
                attribute, threshold = item
                normalized.append(Condition(attribute, threshold))
        return cls(tuple(normalized), certainty, name)

    def fires(self, vector: ComparisonVector) -> bool:
        """Whether every condition holds."""
        return all(condition.holds(vector) for condition in self.conditions)

    def pretty(self) -> str:
        """Figure-1 style rendering of the whole rule."""
        body = " AND ".join(c.pretty() for c in self.conditions)
        return f"IF {body} THEN DUPLICATES with CERTAINTY={self.certainty:g}"


class CertaintyCombination:
    """How certainties of several firing rules combine.

    ``MAXIMUM``
        The strongest rule wins — the usual certainty-factor reading.
    ``NOISY_OR``
        Probabilistic sum ``1 - Π(1 - cf)`` — rules as independent
        evidence (MYCIN-style combination).
    """

    MAXIMUM = "maximum"
    NOISY_OR = "noisy_or"

    ALL = (MAXIMUM, NOISY_OR)


class RuleBasedModel:
    """Knowledge-based decision model over identification rules.

    Parameters
    ----------
    rules:
        The expert rule set.
    classifier:
        Threshold classifier on the combined certainty.  Knowledge-based
        techniques usually use a single threshold ("the set P is usually
        not considered"), but a two-threshold classifier is accepted.
    combination:
        One of :class:`CertaintyCombination`'s constants.

    >>> model = RuleBasedModel(
    ...     [paper_example_rule(0.8, 0.5)], ThresholdClassifier(0.7)
    ... )
    >>> print(model.pretty())
    IF name > 0.8 AND job > 0.5 THEN DUPLICATES with CERTAINTY=0.8
    >>> vector = ComparisonVector(("name", "job"), (0.9, 0.6))
    >>> decision = model.decide(vector)
    >>> (decision.status.value, decision.similarity)
    ('m', 0.8)
    """

    def __init__(
        self,
        rules: Sequence[IdentificationRule],
        classifier: ThresholdClassifier,
        *,
        combination: str = CertaintyCombination.MAXIMUM,
    ) -> None:
        if not rules:
            raise ValueError("need at least one identification rule")
        if combination not in CertaintyCombination.ALL:
            raise ValueError(
                f"unknown certainty combination {combination!r}"
            )
        self._rules = tuple(rules)
        self.classifier = classifier
        self._combination = combination

    @property
    def rules(self) -> tuple[IdentificationRule, ...]:
        """The rule set."""
        return self._rules

    def firing_rules(
        self, vector: ComparisonVector
    ) -> tuple[IdentificationRule, ...]:
        """All rules whose conditions hold for *vector*."""
        return tuple(rule for rule in self._rules if rule.fires(vector))

    def similarity(self, vector: ComparisonVector) -> float:
        """The combined certainty factor (normalized, Figure 3 step 1)."""
        certainties = [
            rule.certainty for rule in self._rules if rule.fires(vector)
        ]
        if not certainties:
            return 0.0
        if self._combination == CertaintyCombination.MAXIMUM:
            return max(certainties)
        result = 1.0
        for certainty in certainties:
            result *= 1.0 - certainty
        return 1.0 - result

    def decide(self, vector: ComparisonVector) -> Decision:
        """Classify the pair by its combined certainty."""
        return self.classifier.decide(self.similarity(vector))

    def forcing_term(self, similarity: float) -> str | None:
        """Name of the rule that forced a decided similarity, if unique.

        Under ``MAXIMUM`` combination the combined certainty *is* the
        certainty of the strongest firing rule, so any rule with
        exactly that certainty names the decision (reason codes,
        audit).  Noisy-or mixes all firing certainties, and no single
        rule can be credited — ``None``.
        """
        if self._combination != CertaintyCombination.MAXIMUM:
            return None
        names = [
            rule.name
            for rule in self._rules
            if rule.certainty == similarity
        ]
        return names[0] if names else None

    def attribute_floors(self) -> SimilarityFloors:
        """Pushdown floors: the weakest condition threshold per attribute.

        A condition ``attribute > t`` (or ``>= t``) cannot distinguish
        similarities below ``t`` — they all leave the condition false —
        so the rule set's combined certainty is bitwise invariant under
        replacing any similarity below the attribute's weakest
        threshold with 0.0.  That makes the per-attribute minimum a
        safe ``min_similarity`` cutoff for the banded kernels (see
        :mod:`repro.matching.pushdown`).  Attributes no rule conditions
        on are unobservable, so the default floor is 1.0.  Inclusive
        conditions at threshold 0.0 fire for every similarity and
        constrain nothing; a *strict* threshold 0.0 pins the floor to
        0.0 (any positive similarity fires, so nothing may be pruned).

        >>> model = RuleBasedModel(
        ...     [
        ...         paper_example_rule(0.8, 0.5),
        ...         IdentificationRule.build(
        ...             [("name", 0.95)], certainty=0.9, name="exact-name"
        ...         ),
        ...     ],
        ...     ThresholdClassifier(0.7),
        ... )
        >>> model.attribute_floors()
        SimilarityFloors(job≥0.5, name≥0.8, default=1)
        """
        floors: dict[str, float] = {}
        for rule in self._rules:
            for condition in rule.conditions:
                if condition.inclusive and condition.threshold == 0.0:
                    # Fires for every similarity — value-independent.
                    continue
                current = floors.get(condition.attribute)
                if current is None or condition.threshold < current:
                    floors[condition.attribute] = condition.threshold
        return SimilarityFloors(floors, default=1.0)

    def pretty(self) -> str:
        """Render the whole rule set Figure-1 style."""
        return "\n".join(rule.pretty() for rule in self._rules)

    def __repr__(self) -> str:
        return (
            f"RuleBasedModel({len(self._rules)} rules, "
            f"combination={self._combination!r}, {self.classifier!r})"
        )


def paper_example_rule(
    threshold1: float = 0.8, threshold2: float = 0.5
) -> IdentificationRule:
    """The literal Figure-1 rule with configurable thresholds.

    ``IF name > threshold1 AND job > threshold2
    THEN DUPLICATES with CERTAINTY=0.8``
    """
    return IdentificationRule.build(
        [("name", threshold1), ("job", threshold2)],
        certainty=0.8,
        name="figure1",
    )
