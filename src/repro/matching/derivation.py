"""Derivation functions ϑ for x-tuple pairs (Section IV-B, Figure 6).

An x-tuple pair produces a ``k × l`` comparison matrix instead of a single
vector, so decision models must be adapted.  The paper defines two
procedures:

* **similarity-based derivation** (Figure 6, left): φ is applied to every
  alternative-pair vector, then ϑ : ℝ^{k×l} → ℝ maps the similarity
  matrix to one x-tuple similarity.  The paper's concrete ϑ is the
  *conditional expectation* (Equation 6)

  ``sim(t1, t2) = Σᵢ Σⱼ p(t1ⁱ)/p(t1) · p(t2ʲ)/p(t2) · sim(t1ⁱ, t2ʲ)``

  — the expected similarity over all possible worlds containing both
  tuples.  Suitable for knowledge-based (normalized) step-1 results; with
  non-normalized results the expectation "can become unrepresentative".

* **decision-based derivation** (Figure 6, right): every alternative pair
  is *classified* first (η(t1ⁱ, t2ʲ) ∈ {m, p, u}); ϑ then maps the
  matching-value matrix to a similarity.  The paper's concrete ϑ is the
  matching weight (Equations 7–9)

  ``sim(t1, t2) = P(m)/P(u)`` with
  ``P(m) = Σ_{(i,j) ∈ M} wᵢⱼ`` and ``P(u) = Σ_{(i,j) ∈ U} wᵢⱼ``

  where ``wᵢⱼ`` is the conditional world weight.  Suitable for
  probabilistic techniques.

* the **expected matching result** (the paper's closing suggestion):
  ``ϑ(η⃗) = E(η(t1ⁱ, t2ʲ) | B)`` with the coding m=2, p=1, u=0.

All derivations consume a :class:`DerivationInput` holding the per-pair
similarities *and* decisions plus the conditional weights, so the three
families share one call signature and further derivations can be plugged
in (the paper: "further adequate derivation functions are possible").
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.matching.decision.base import MatchStatus

#: Cell count below which the derivation functions use scalar loops:
#: typical comparison matrices are tiny (k, l ≤ 8) and array dispatch
#: costs more than it saves there, while the loop also preserves the
#: exact summation order of the original reference implementations.
_VECTOR_THRESHOLD = 64

#: Numeric coding of matching values (the paper's m=2, p=1, u=0).
_STATUS_CODES = {
    MatchStatus.MATCH: 2,
    MatchStatus.POSSIBLE: 1,
    MatchStatus.UNMATCH: 0,
}


@dataclass(frozen=True)
class DerivationInput:
    """Everything a derivation function ϑ may look at.

    The public fields stay plain tuples (hashable, picklable, printable —
    the explainability surface), while numpy views of the same matrices
    materialize lazily — and are cached on the instance — the first time
    a vectorized derivation function asks for them.

    Attributes
    ----------
    similarities:
        Row-major ``k × l`` matrix of alternative-pair similarities
        (step 1.1 results, ``s⃗(t1, t2)``).
    statuses:
        Row-major ``k × l`` matrix of alternative-pair matching values
        (step 1.2 results, ``η⃗(t1, t2)``); ``None`` when the procedure is
        similarity-based and no per-pair classification happened.
    weights:
        Row-major ``k × l`` matrix of conditional pair weights
        ``p(t1ⁱ)/p(t1) · p(t2ʲ)/p(t2)``; rows sum to the left conditional
        probabilities, the whole matrix sums to 1.
    """

    similarities: tuple[tuple[float, ...], ...]
    statuses: tuple[tuple[MatchStatus, ...], ...] | None
    weights: tuple[tuple[float, ...], ...]

    def __getstate__(self):
        # Cached numpy views are derived data — rebuild after unpickling
        # instead of shipping them over process boundaries.
        return (self.similarities, self.statuses, self.weights)

    def __setstate__(self, state) -> None:
        similarities, statuses, weights = state
        object.__setattr__(self, "similarities", similarities)
        object.__setattr__(self, "statuses", statuses)
        object.__setattr__(self, "weights", weights)

    @property
    def shape(self) -> tuple[int, int]:
        """``(k, l)``."""
        return (len(self.weights), len(self.weights[0]))

    @property
    def similarity_array(self) -> np.ndarray:
        """``(k, l)`` float array of the similarities, built once."""
        cached = getattr(self, "_sim_array", None)
        if cached is None:
            cached = np.asarray(self.similarities, dtype=np.float64)
            object.__setattr__(self, "_sim_array", cached)
        return cached

    @property
    def weight_array(self) -> np.ndarray:
        """``(k, l)`` float array of the conditional weights, built once."""
        cached = getattr(self, "_weight_array", None)
        if cached is None:
            cached = np.asarray(self.weights, dtype=np.float64)
            object.__setattr__(self, "_weight_array", cached)
        return cached

    @property
    def status_code_array(self) -> np.ndarray | None:
        """``(k, l)`` int array coding statuses m=2, p=1, u=0 (or None)."""
        if self.statuses is None:
            return None
        cached = getattr(self, "_status_codes", None)
        if cached is None:
            codes = _STATUS_CODES
            cached = np.asarray(
                [[codes[s] for s in row] for row in self.statuses],
                dtype=np.int8,
            )
            object.__setattr__(self, "_status_codes", cached)
        return cached

    def cells(self):
        """Iterate ``(i, j, similarity, status, weight)``."""
        for i, row in enumerate(self.weights):
            for j, weight in enumerate(row):
                status = (
                    self.statuses[i][j] if self.statuses is not None else None
                )
                yield i, j, self.similarities[i][j], status, weight


@runtime_checkable
class DerivationFunction(Protocol):
    """ϑ — maps the matrix information of an x-tuple pair to one degree."""

    #: Whether the procedure must classify alternative pairs first
    #: (decision-based, Figure 6 right) or not (similarity-based, left).
    requires_statuses: bool

    def __call__(self, data: DerivationInput) -> float:  # pragma: no cover
        ...


class ExpectedSimilarity:
    """Equation 6: conditional expectation of alternative similarities.

    The canonical similarity-based ϑ.  Probabilities are already
    conditioned (normalized w.r.t. the x-tuple probability) inside the
    weights, so this is exactly
    ``E(sim(t1ⁱ, t2ʲ) | B)`` — the expected value over all possible worlds
    containing both tuples.
    """

    requires_statuses = False

    def __call__(self, data: DerivationInput) -> float:
        weights = data.weights
        if len(weights) * len(weights[0]) <= _VECTOR_THRESHOLD:
            # Small matrices (flat pairs degenerate to 1×1) dominate many
            # workloads; scalar math beats array dispatch there and keeps
            # the row-major summation order of the reference loop.
            total = 0.0
            for weight_row, sim_row in zip(weights, data.similarities):
                for weight, similarity in zip(weight_row, sim_row):
                    total += weight * similarity
            return total
        return float(
            np.dot(data.weight_array.ravel(), data.similarity_array.ravel())
        )

    def __repr__(self) -> str:
        return "ExpectedSimilarity()"


class MostProbableWorldSimilarity:
    """Similarity of the modal alternative pair (ablation baseline).

    Takes the similarity of the single most probable world containing
    both tuples — the similarity-based analogue of the certain-key
    reduction strategy (Section V-A.2).  Cheaper but blind to all other
    worlds; included for the ablation experiments.
    """

    requires_statuses = False

    def __call__(self, data: DerivationInput) -> float:
        weights = data.weights
        if len(weights) * len(weights[0]) <= _VECTOR_THRESHOLD:
            best_weight = -1.0
            best_similarity = 0.0
            for weight_row, sim_row in zip(weights, data.similarities):
                for weight, similarity in zip(weight_row, sim_row):
                    if weight > best_weight:
                        best_weight = weight
                        best_similarity = similarity
            return best_similarity
        flat_index = int(np.argmax(data.weight_array))
        return float(data.similarity_array.ravel()[flat_index])

    def __repr__(self) -> str:
        return "MostProbableWorldSimilarity()"


class MaximumSimilarity:
    """Optimistic ϑ: the best alternative-pair similarity.

    Corresponds to "the tuples match if *any* of their possible
    appearances match"; probability-blind, included for ablations.
    """

    requires_statuses = False

    def __call__(self, data: DerivationInput) -> float:
        similarities = data.similarities
        if len(similarities) * len(similarities[0]) <= _VECTOR_THRESHOLD:
            return max(value for row in similarities for value in row)
        return float(data.similarity_array.max())

    def __repr__(self) -> str:
        return "MaximumSimilarity()"


class MatchingWeight:
    """Equations 7–9: ``sim(t1, t2) = P(m) / P(u)``.

    The canonical decision-based ϑ.  ``P(m)`` aggregates the conditional
    world weights of alternative pairs classified as matches, ``P(u)``
    those classified as non-matches; possible matches contribute to
    neither.

    Edge cases (the paper leaves them open; we document our choices):

    * ``P(u) = 0`` and ``P(m) > 0`` — no world votes against:
      returns ``math.inf`` (an unconditional match for any threshold).
    * ``P(m) = P(u) = 0`` — every world is a possible match: returns 1.0,
      the neutral weight, which any classifier with ``T_λ ≤ 1 ≤ T_μ``
      assigns to the possible band.
    """

    requires_statuses = True

    def __call__(self, data: DerivationInput) -> float:
        if data.statuses is None:
            raise ValueError(
                "MatchingWeight is decision-based and needs statuses"
            )
        weights = data.weights
        if len(weights) * len(weights[0]) <= _VECTOR_THRESHOLD:
            p_match = 0.0
            p_unmatch = 0.0
            for weight_row, status_row in zip(weights, data.statuses):
                for weight, status in zip(weight_row, status_row):
                    if status is MatchStatus.MATCH:
                        p_match += weight
                    elif status is MatchStatus.UNMATCH:
                        p_unmatch += weight
        else:
            weight_array = data.weight_array
            codes = data.status_code_array
            p_match = float(weight_array[codes == 2].sum())
            p_unmatch = float(weight_array[codes == 0].sum())
        if p_unmatch <= 0.0:
            return math.inf if p_match > 0.0 else 1.0
        return p_match / p_unmatch

    def __repr__(self) -> str:
        return "MatchingWeight()"


class MatchProbability:
    """Normalized decision-based ϑ: just ``P(m)``.

    The overall probability of all possible worlds in which the tuples
    are determined to be a match — a normalized alternative to
    :class:`MatchingWeight`, convenient when downstream thresholds must
    live in [0, 1].
    """

    requires_statuses = True

    def __call__(self, data: DerivationInput) -> float:
        if data.statuses is None:
            raise ValueError(
                "MatchProbability is decision-based and needs statuses"
            )
        weights = data.weights
        if len(weights) * len(weights[0]) <= _VECTOR_THRESHOLD:
            return sum(
                weight
                for weight_row, status_row in zip(weights, data.statuses)
                for weight, status in zip(weight_row, status_row)
                if status is MatchStatus.MATCH
            )
        codes = data.status_code_array
        return float(data.weight_array[codes == 2].sum())

    def __repr__(self) -> str:
        return "MatchProbability()"


class ExpectedMatchingResult:
    """The paper's suggested further decision-based ϑ.

    ``ϑ(η⃗) = E(η(t1ⁱ, t2ʲ) | B)`` with matching results coded as
    ``{m = 2, p = 1, u = 0}``; the result lives in [0, 2] and thresholds
    must be chosen in that range (e.g. T_λ, T_μ around 1).
    """

    requires_statuses = True

    def __call__(self, data: DerivationInput) -> float:
        if data.statuses is None:
            raise ValueError(
                "ExpectedMatchingResult is decision-based and needs statuses"
            )
        weights = data.weights
        if len(weights) * len(weights[0]) <= _VECTOR_THRESHOLD:
            total = 0.0
            for weight_row, status_row in zip(weights, data.statuses):
                for weight, status in zip(weight_row, status_row):
                    total += weight * _STATUS_CODES[status]
            return total
        codes = data.status_code_array
        return float(
            np.dot(
                data.weight_array.ravel(),
                codes.ravel().astype(np.float64),
            )
        )

    def __repr__(self) -> str:
        return "ExpectedMatchingResult()"


def normalized_weights(
    left_probabilities: Sequence[float],
    right_probabilities: Sequence[float],
) -> tuple[tuple[float, ...], ...]:
    """Conditional pair-weight matrix from raw alternative probabilities.

    ``wᵢⱼ = p(t1ⁱ)/p(t1) · p(t2ʲ)/p(t2)`` — the paper's normalization
    "also known as conditioning or scaling" that removes tuple-membership
    uncertainty.  The matrix always sums to 1.
    """
    left_total = sum(left_probabilities)
    right_total = sum(right_probabilities)
    if left_total <= 0.0 or right_total <= 0.0:
        raise ValueError("alternative probabilities must have positive mass")
    return tuple(
        tuple(
            (lp / left_total) * (rp / right_total)
            for rp in right_probabilities
        )
        for lp in left_probabilities
    )


#: Registry of derivation functions by name.
DERIVATIONS = {
    "expected_similarity": ExpectedSimilarity,
    "most_probable_world": MostProbableWorldSimilarity,
    "maximum_similarity": MaximumSimilarity,
    "matching_weight": MatchingWeight,
    "match_probability": MatchProbability,
    "expected_matching_result": ExpectedMatchingResult,
}
