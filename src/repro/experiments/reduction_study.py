"""Tier-B experiment E3: search-space reduction trade-offs.

Section V motivates reduction ("low risk of loosing matches") but never
measures it.  E3 quantifies, for every strategy of Sections V-A and V-B,

* **reduction ratio** — how much of the pair space is pruned,
* **pairs completeness** — how many true matches survive,
* the harmonic **reduction F1** of the two,

on generated x-relations with ground truth.  E4 (scalability) reuses the
same strategy table under a growing relation size.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.datagen.generator import DatasetConfig, generate_dataset
from repro.datagen.uncertainty import UncertaintyProfile
from repro.matching.pipeline import FullComparison, PairGenerator
from repro.pdb.relations import XRelation
from repro.reduction.alternatives import AlternativeSorting
from repro.reduction.blocking import (
    AlternativeKeyBlocking,
    CertainKeyBlocking,
)
from repro.reduction.derived_keys import PhoneticBlocking
from repro.reduction.keys import SubstringKey
from repro.reduction.snm import SortedNeighborhood
from repro.reduction.uncertain_clustering import (
    UncertainKeyClusteringBlocking,
)
from repro.reduction.uncertain_keys import UncertainKeySNM
from repro.verification.metrics import (
    pairs_completeness,
    reduction_f1,
    reduction_ratio,
)

#: Default reduction key on the person schema.
DEFAULT_KEY = SubstringKey([("name", 3), ("job", 2)])

#: Coarser blocking key (more, larger blocks survive typos better).
COARSE_KEY = SubstringKey([("name", 1), ("job", 1)])


def strategy_table(
    *, key: SubstringKey | None = None, window: int = 5
) -> dict[str, Callable[[], PairGenerator]]:
    """Factories for every reduction strategy under comparison.

    Multi-pass world strategies are excluded here: full-world enumeration
    explodes on generated relations with hundreds of maybe x-tuples; they
    are exercised on paper-sized relations in the ablation study instead.
    """
    key = key or DEFAULT_KEY
    return {
        "full_comparison": FullComparison,
        "snm_certain_key": lambda: SortedNeighborhood(key, window),
        "snm_alternatives": lambda: AlternativeSorting(key, window),
        "snm_uncertain_ranked": lambda: UncertainKeySNM(key, window),
        "blocking_certain_key": lambda: CertainKeyBlocking(key),
        "blocking_alternative_keys": lambda: AlternativeKeyBlocking(key),
        "blocking_coarse_key": lambda: CertainKeyBlocking(COARSE_KEY),
        "blocking_uncertain_clustering": lambda: (
            UncertainKeyClusteringBlocking(key, radius=0.34)
        ),
        "blocking_phonetic": PhoneticBlocking,
    }


@dataclass(frozen=True)
class ReductionRow:
    """One strategy's reduction metrics on one dataset."""

    strategy: str
    candidate_pairs: int
    total_pairs: int
    reduction_ratio: float
    pairs_completeness: float
    reduction_f1: float

    def as_dict(self) -> dict[str, object]:
        """Flatten for table rendering."""
        return {
            "strategy": self.strategy,
            "candidates": self.candidate_pairs,
            "total": self.total_pairs,
            "reduction_ratio": self.reduction_ratio,
            "pairs_completeness": self.pairs_completeness,
            "reduction_f1": self.reduction_f1,
        }


def evaluate_strategy(
    generator: PairGenerator,
    relation: XRelation,
    true_matches: Iterable[tuple[str, str]],
    *,
    name: str = "strategy",
) -> ReductionRow:
    """Reduction metrics of one pair generator on one relation."""
    candidates = set(generator.pairs(relation))
    gold = frozenset(true_matches)
    size = len(relation)
    return ReductionRow(
        strategy=name,
        candidate_pairs=len(candidates),
        total_pairs=size * (size - 1) // 2,
        reduction_ratio=reduction_ratio(candidates, size),
        pairs_completeness=pairs_completeness(candidates, gold),
        reduction_f1=reduction_f1(candidates, gold, size),
    )


def run_e3_reduction(
    *,
    entity_count: int = 150,
    seed: int = 17,
    window: int = 5,
    profile: UncertaintyProfile | None = None,
) -> list[ReductionRow]:
    """E3: all strategies on one generated x-relation."""
    dataset = generate_dataset(
        DatasetConfig(
            entity_count=entity_count,
            profile=profile or UncertaintyProfile(),
            seed=seed,
        )
    )
    rows = []
    for name, factory in strategy_table(window=window).items():
        rows.append(
            evaluate_strategy(
                factory(),
                dataset.relation,
                dataset.true_matches,
                name=name,
            )
        )
    return rows


def run_e3_window_sweep(
    *,
    entity_count: int = 150,
    seed: int = 17,
    windows: tuple[int, ...] = (2, 3, 5, 8, 12),
) -> list[dict[str, object]]:
    """Window-size sweep for the three SNM variants.

    Larger windows trade reduction ratio for pairs completeness; the
    sweep exposes where each variant's curve lies.
    """
    dataset = generate_dataset(
        DatasetConfig(entity_count=entity_count, seed=seed)
    )
    rows: list[dict[str, object]] = []
    for window in windows:
        for name, factory in (
            ("snm_certain_key", lambda w=window: SortedNeighborhood(DEFAULT_KEY, w)),
            ("snm_alternatives", lambda w=window: AlternativeSorting(DEFAULT_KEY, w)),
            ("snm_uncertain_ranked", lambda w=window: UncertainKeySNM(DEFAULT_KEY, w)),
        ):
            row = evaluate_strategy(
                factory(),
                dataset.relation,
                dataset.true_matches,
                name=name,
            )
            rows.append({"window": window, **row.as_dict()})
    return rows
