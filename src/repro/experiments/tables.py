"""Plain-text table rendering for experiment reports.

The harness prints results as aligned monospace tables (the closest
analogue of the paper's figures for terminal output); no third-party
table libraries are used.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any


def format_cell(value: Any, *, precision: int = 4) -> str:
    """Uniform cell formatting: floats rounded, everything else ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else "-inf"
        return f"{value:.{precision}g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render an aligned table with a header rule.

    Column widths adapt to contents; numeric-looking columns are right
    aligned, text columns left aligned.
    """
    rendered_rows = [
        [format_cell(cell, precision=precision) for cell in row]
        for row in rows
    ]
    columns = len(headers)
    for row in rendered_rows:
        if len(row) != columns:
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {columns}"
            )
    widths = [
        max(
            len(str(headers[i])),
            *(len(row[i]) for row in rendered_rows),
        )
        if rendered_rows
        else len(str(headers[i]))
        for i in range(columns)
    ]

    def _is_numeric(column: int) -> bool:
        cells = [row[column] for row in rendered_rows]
        if not cells:
            return False
        return all(
            cell.replace(".", "", 1)
            .replace("-", "", 1)
            .replace("e", "", 1)
            .replace("+", "", 1)
            .isdigit()
            or cell in ("inf", "-inf", "nan")
            for cell in cells
        )

    numeric = [_is_numeric(i) for i in range(columns)]

    def _format_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(
                cell.rjust(widths[i]) if numeric[i] else cell.ljust(widths[i])
            )
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(_format_row([str(h) for h in headers]))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(_format_row(row) for row in rendered_rows)
    return "\n".join(lines)


def render_mapping_table(
    rows: Sequence[Mapping[str, Any]],
    *,
    columns: Sequence[str] | None = None,
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render a list of dict rows, inferring columns when omitted."""
    if not rows:
        return title or ""
    keys = list(columns) if columns is not None else list(rows[0].keys())
    return render_table(
        keys,
        [[row.get(key, "") for key in keys] for row in rows],
        title=title,
        precision=precision,
    )
