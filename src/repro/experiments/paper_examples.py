"""Executable reproductions of every worked example in the paper.

Each ``figure_*``/``section_*`` function recomputes one concrete artifact
of the paper — a similarity value, a world set, a sort order, a blocking
partition — using the library's public API and returns it in a structured
form.  The golden tests in ``tests/test_paper_examples.py`` pin the
returned values to the numbers printed in the paper; the benchmark
harness times and prints them.

Reference configuration (Sections IV-A and IV-B):

* comparison function: normalized Hamming similarity,
* combination function: φ(c⃗) = 0.8·c_name + 0.2·c_job,
* thresholds: T_λ = 0.4, T_μ = 0.7.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.paper_data import (
    MU_JOBS,
    relation_r1,
    relation_r2,
    relation_r34,
    xtuple_t32,
    xtuple_t42,
)
from repro.matching.combination import WeightedSum
from repro.matching.comparison import AttributeMatcher
from repro.matching.decision.base import (
    CombinedDecisionModel,
    MatchStatus,
    ThresholdClassifier,
)
from repro.matching.derivation import (
    ExpectedMatchingResult,
    ExpectedSimilarity,
    MatchingWeight,
)
from repro.matching.engine import XTupleDecisionProcedure
from repro.pdb.conditioning import condition_on_presence
from repro.pdb.worlds import enumerate_worlds
from repro.reduction.alternatives import AlternativeSorting
from repro.reduction.blocking import AlternativeKeyBlocking
from repro.reduction.keys import SubstringKey
from repro.reduction.multipass import MultiPassSNM
from repro.reduction.snm import SortedNeighborhood
from repro.reduction.uncertain_keys import UncertainKeySNM
from repro.similarity.hamming import HAMMING
from repro.similarity.uncertain import PatternPolicy, UncertainValueComparator

#: The paper's sorting key: name[:3] + job[:2] (Section V-A).
SORTING_KEY = SubstringKey([("name", 3), ("job", 2)])

#: The paper's blocking key: name[:1] + job[:1] (Section V-B).
BLOCKING_KEY = SubstringKey([("name", 1), ("job", 1)])


def paper_matcher() -> AttributeMatcher:
    """Hamming-based matcher with pattern expansion over the mu-lexicon."""
    comparator = UncertainValueComparator(
        HAMMING,
        pattern_policy=PatternPolicy.EXPAND,
        pattern_lexicon=MU_JOBS,
    )
    return AttributeMatcher({"name": comparator, "job": comparator})


def paper_model() -> CombinedDecisionModel:
    """φ = 0.8·name + 0.2·job with T_λ = 0.4, T_μ = 0.7."""
    return CombinedDecisionModel(
        WeightedSum({"name": 0.8, "job": 0.2}),
        ThresholdClassifier(0.7, 0.4),
        name="paper",
    )


# ----------------------------------------------------------------------
# Section IV-A — the flat-model worked example (Figure 4)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FlatExample:
    """The Section IV-A numbers for (t11, t22)."""

    name_similarity: float  # paper: 0.9
    job_similarity: float  # paper: 0.59 (exactly 53/90)
    tuple_similarity: float  # paper: 0.838 (exactly 377/450)


def section_4a_flat_example() -> FlatExample:
    """Recompute sim(t11.name, t22.name), sim(t11.job, t22.job), sim(t11, t22)."""
    t11 = relation_r1().get("t11")
    t22 = relation_r2().get("t22")
    matcher = paper_matcher()
    name_sim = matcher.compare_values("name", t11["name"], t22["name"])
    job_sim = matcher.compare_values("job", t11["job"], t22["job"])
    vector = matcher.compare_rows(t11, t22)
    tuple_sim = WeightedSum({"name": 0.8, "job": 0.2})(vector)
    return FlatExample(name_sim, job_sim, tuple_sim)


# ----------------------------------------------------------------------
# Figure 7 — possible worlds of {t32, t42}
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WorldsExample:
    """Figure 7's world set and conditioning constant."""

    world_probabilities: tuple[float, ...]  # 8 worlds, paper order
    presence_probability: float  # P(B) = 0.72
    conditional_probabilities: tuple[float, ...]  # P(I1|B), P(I2|B), P(I3|B)


def figure_7_possible_worlds() -> WorldsExample:
    """Enumerate the eight worlds and condition on presence of both tuples.

    The paper's order: I1..I3 are the full worlds (t32 alternative 1..3
    with t42 present), I4 is {t42 only}, I5..I7 are {t32 alternative 1..3
    only}, I8 is the empty world.
    """
    worlds = list(enumerate_worlds([xtuple_t32(), xtuple_t42()]))
    by_selection = {world.selection: world for world in worlds}
    paper_order = [
        (("t32", 0), ("t42", 0)),  # I1 — Tim/mechanic, Tom/mechanic
        (("t32", 1), ("t42", 0)),  # I2 — Jim/mechanic, Tom/mechanic
        (("t32", 2), ("t42", 0)),  # I3 — Jim/baker,   Tom/mechanic
        (("t42", 0),),             # I4 — only t42
        (("t32", 0),),             # I5 — only t32 (Tim/mechanic)
        (("t32", 1),),             # I6 — only t32 (Jim/mechanic)
        (("t32", 2),),             # I7 — only t32 (Jim/baker)
        (),                        # I8 — empty world
    ]
    ordered = [by_selection[selection] for selection in paper_order]
    conditioned, presence = condition_on_presence(
        ordered, ("t32", "t42")
    )
    return WorldsExample(
        world_probabilities=tuple(w.probability for w in ordered),
        presence_probability=presence,
        conditional_probabilities=tuple(
            w.probability for w in conditioned
        ),
    )


# ----------------------------------------------------------------------
# Section IV-B — derivations for (t32, t42)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DerivationExample:
    """The Section IV-B numbers for (t32, t42)."""

    alternative_similarities: tuple[float, ...]  # 11/15, 7/15, 4/15
    similarity_based: float  # Eq. 6: 7/15
    alternative_statuses: tuple[str, ...]  # m, p, u
    p_match: float  # 3/9
    p_unmatch: float  # 4/9
    decision_based: float  # Eq. 7: 0.75
    expected_matching_result: float  # E(η|B) with m=2,p=1,u=0


def section_4b_derivations() -> DerivationExample:
    """Recompute both derivations of the worked example."""
    matcher = paper_matcher()
    model = paper_model()
    t32, t42 = xtuple_t32(), xtuple_t42()

    sim_proc = XTupleDecisionProcedure(matcher, model, ExpectedSimilarity())
    data = sim_proc.derivation_input(sim_proc.comparison_matrix(t32, t42))
    alternative_similarities = tuple(
        data.similarities[i][0] for i in range(3)
    )
    similarity_based = sim_proc.similarity(t32, t42)

    dec_proc = XTupleDecisionProcedure(matcher, model, MatchingWeight())
    dec_data = dec_proc.derivation_input(
        dec_proc.comparison_matrix(t32, t42)
    )
    statuses = tuple(
        dec_data.statuses[i][0].value for i in range(3)
    )
    p_match = sum(
        dec_data.weights[i][0]
        for i in range(3)
        if dec_data.statuses[i][0] is MatchStatus.MATCH
    )
    p_unmatch = sum(
        dec_data.weights[i][0]
        for i in range(3)
        if dec_data.statuses[i][0] is MatchStatus.UNMATCH
    )
    decision_based = dec_proc.similarity(t32, t42)

    emr_proc = XTupleDecisionProcedure(
        matcher, model, ExpectedMatchingResult()
    )
    expected_matching = emr_proc.similarity(t32, t42)

    return DerivationExample(
        alternative_similarities=alternative_similarities,
        similarity_based=similarity_based,
        alternative_statuses=statuses,
        p_match=p_match,
        p_unmatch=p_unmatch,
        decision_based=decision_based,
        expected_matching_result=expected_matching,
    )


# ----------------------------------------------------------------------
# Section V-A — Sorted-Neighborhood adaptations over ℛ34
# ----------------------------------------------------------------------


def _expand_r34():
    """ℛ34 with the mu* pattern expanded (worlds need concrete jobs)."""
    relation = relation_r34()
    from repro.pdb.relations import XRelation

    return XRelation(
        relation.name,
        relation.schema,
        [
            xtuple.expand_patterns({"job": MU_JOBS}).expand()
            for xtuple in relation
        ],
    )


def figure_9_sorted_world_orders() -> dict[str, list[str]]:
    """Sort orders for the two specific worlds of Figures 8/9."""
    relation = _expand_r34()
    multipass = MultiPassSNM(SORTING_KEY, window=2, selection="all")
    worlds = multipass.select_worlds(relation)

    def _world_values(world):
        values = {}
        for xtuple in relation:
            index = world.alternative_index(xtuple.tuple_id)
            alternative = xtuple.alternatives[index]
            values[xtuple.tuple_id] = (
                alternative.value("name").most_probable(),
                alternative.value("job").most_probable(),
            )
        return values

    figure8_i1 = {
        "t31": ("John", "pilot"),
        "t32": ("Tim", "mechanic"),
        "t41": ("Johan", "pianist"),
        "t42": ("Tom", "mechanic"),
        "t43": ("Sean", "pilot"),
    }
    figure8_i2 = {
        "t31": ("Johan", "musician"),
        "t32": ("Jim", "mechanic"),
        "t41": ("John", "pilot"),
        "t42": ("Tom", "mechanic"),
        "t43": ("John", "⊥"),
    }
    orders: dict[str, list[str]] = {}
    for world in worlds:
        values = _world_values(world)
        rendered = {
            tid: (name, "⊥" if job.__class__.__name__ == "_NonExistent" else job)
            for tid, (name, job) in values.items()
        }
        if rendered == figure8_i1:
            orders["I1"] = multipass.sorted_ids_for_world(relation, world)
        elif rendered == figure8_i2:
            orders["I2"] = multipass.sorted_ids_for_world(relation, world)
    return orders


def figure_10_certain_key_order() -> list[tuple[str, str]]:
    """Most-probable-alternative keys, sorted (Figure 10).

    Returns ``(key value, tuple id)`` rows in sorted order.
    """
    relation = _expand_r34()
    snm = SortedNeighborhood(SORTING_KEY, window=2)
    return sorted(snm.keyed_ids(relation))


def figure_11_sorted_alternatives() -> dict[str, object]:
    """The sorting-alternatives run of Figures 11 and 12.

    Returns the raw sorted entries, the neighbor-deduped entries and the
    window-2 matchings (exactly five, per the paper).
    """
    relation = _expand_r34()
    sorting = AlternativeSorting(SORTING_KEY, window=2)
    return {
        "sorted_entries": sorting.sorted_entries(relation),
        "deduped_entries": sorting.deduped_entries(relation),
        "matchings": list(sorting.pairs(relation)),
    }


def figure_13_uncertain_key_ranking() -> dict[str, object]:
    """Uncertain-key distributions and the ranked order (Figure 13).

    The displayed distributions are *raw* (the figure's p(k) column shows
    unconditioned alternative probabilities, e.g. t32: 0.3/0.2/0.4);
    ranking itself conditions on presence internally, which leaves the
    order unchanged.
    """
    from repro.reduction.keys import xtuple_key_distribution

    relation = relation_r34()  # patterns stay: mu* keys to 'mu' directly
    snm = UncertainKeySNM(SORTING_KEY, window=2)
    return {
        "key_distributions": [
            (
                xtuple.tuple_id,
                xtuple_key_distribution(
                    xtuple, SORTING_KEY, conditioned=False
                ),
            )
            for xtuple in relation
        ],
        "ranked_ids": snm.ranked_ids(relation),
    }


# ----------------------------------------------------------------------
# Section V-B — blocking with alternative keys (Figure 14)
# ----------------------------------------------------------------------


def figure_14_alternative_key_blocking() -> dict[str, object]:
    """Alternative-key blocks over ℛ34 and the resulting matchings.

    The paper's Figure 14 caption labels tuples t21/t22/t33 from the
    *flat* example although the mechanism runs on x-relations; we run the
    mechanism on ℛ34 = ℛ3 ∪ ℛ4 (see DESIGN.md) and report its blocks.
    """
    relation = _expand_r34()
    blocking = AlternativeKeyBlocking(BLOCKING_KEY)
    blocks = blocking.blocks(relation)
    return {
        "blocks": blocks,
        "matchings": list(blocking.pairs(relation)),
        "block_count": len(blocks),
    }
