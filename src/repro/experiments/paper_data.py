"""The paper's example relations, verbatim (Figures 4 and 5).

These fixtures are shared by the golden tests, the example scripts and
the benchmark harness.  Values and probabilities are transcribed exactly
from the paper.
"""

from __future__ import annotations

from repro.pdb.relations import ProbabilisticRelation, Schema, XRelation
from repro.pdb.tuples import ProbabilisticTuple
from repro.pdb.values import PatternValue
from repro.pdb.xtuples import XTuple

#: The (name, job) schema of all examples.
SCHEMA = Schema(("name", "job"))

#: Job lexicon used to expand the paper's ``mu*`` pattern ("e.g.,
#: musician"); any lexicon with ≥ 1 ``mu``-word works, this one mirrors
#: the corpus.
MU_JOBS = ("musician", "museum guide", "musicologist")


def relation_r1() -> ProbabilisticRelation:
    """Figure 4, left: the probabilistic relation ℛ1.

    Note the implicit ⊥ masses: ``t11.job`` sums to 0.9 — "the person
    represented by tuple t11 is jobless with a probability of 10%".
    """
    return ProbabilisticRelation(
        "R1",
        SCHEMA,
        [
            ProbabilisticTuple(
                "t11",
                {
                    "name": "Tim",
                    "job": {"machinist": 0.7, "mechanic": 0.2},
                },
                1.0,
            ),
            ProbabilisticTuple(
                "t12",
                {
                    "name": {"John": 0.5, "Johan": 0.5},
                    "job": {"baker": 0.7, "confectioner": 0.3},
                },
                1.0,
            ),
            ProbabilisticTuple(
                "t13",
                {
                    "name": {"Tim": 0.6, "Tom": 0.4},
                    "job": "machinist",
                },
                0.6,
            ),
        ],
    )


def relation_r2() -> ProbabilisticRelation:
    """Figure 4, right: the probabilistic relation ℛ2."""
    return ProbabilisticRelation(
        "R2",
        SCHEMA,
        [
            ProbabilisticTuple(
                "t21",
                {
                    "name": {"John": 0.7, "Jon": 0.3},
                    "job": "confectionist",
                },
                1.0,
            ),
            ProbabilisticTuple(
                "t22",
                {
                    "name": {"Tim": 0.7, "Kim": 0.3},
                    "job": "mechanic",
                },
                0.8,
            ),
            ProbabilisticTuple(
                "t23",
                {
                    "name": "Timothy",
                    "job": {"mechanist": 0.8, "engineer": 0.2},
                },
                0.7,
            ),
        ],
    )


def relation_r3() -> XRelation:
    """Figure 5, left: the x-relation ℛ3.

    ``t31``'s second alternative has the pattern job ``mu*`` — "a uniform
    distribution over all possible jobs starting with the characters
    'mu'".  ``t32`` is a maybe x-tuple (mass 0.9).
    """
    return XRelation(
        "R3",
        SCHEMA,
        [
            XTuple.build(
                "t31",
                [
                    ({"name": "John", "job": "pilot"}, 0.7),
                    ({"name": "Johan", "job": PatternValue("mu*")}, 0.3),
                ],
            ),
            XTuple.build(
                "t32",
                [
                    ({"name": "Tim", "job": "mechanic"}, 0.3),
                    ({"name": "Jim", "job": "mechanic"}, 0.2),
                    ({"name": "Jim", "job": "baker"}, 0.4),
                ],
            ),
        ],
    )


def relation_r4() -> XRelation:
    """Figure 5, right: the x-relation ℛ4.

    ``t42`` and ``t43`` are maybe x-tuples (masses 0.8); ``t43``'s first
    alternative has a non-existent job (⊥).
    """
    return XRelation(
        "R4",
        SCHEMA,
        [
            XTuple.build(
                "t41",
                [
                    ({"name": "John", "job": "pilot"}, 0.8),
                    ({"name": "Johan", "job": "pianist"}, 0.2),
                ],
            ),
            XTuple.build(
                "t42",
                [({"name": "Tom", "job": "mechanic"}, 0.8)],
            ),
            XTuple.build(
                "t43",
                [
                    ({"name": "John", "job": None}, 0.2),
                    ({"name": "Sean", "job": "pilot"}, 0.6),
                ],
            ),
        ],
    )


def relation_r34() -> XRelation:
    """The union ℛ34 = ℛ3 ∪ ℛ4 of Section V's examples."""
    return relation_r3().union(relation_r4(), "R34")


def xtuple_t32() -> XTuple:
    """The x-tuple t32 of the Section IV-B worked example."""
    return relation_r3().get("t32")


def xtuple_t42() -> XTuple:
    """The x-tuple t42 of the Section IV-B worked example."""
    return relation_r4().get("t42")
