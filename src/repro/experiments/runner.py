"""Experiment report runner: ``python -m repro.experiments.runner``.

Prints every reproduced figure and Tier-B study as plain-text tables —
the source of the numbers recorded in EXPERIMENTS.md.  Pass section
names to restrict the output (e.g. ``figures``, ``e1``, ``e2``, ``e3``).
"""

from __future__ import annotations

import sys

from repro.experiments.paper_examples import (
    figure_7_possible_worlds,
    figure_9_sorted_world_orders,
    figure_10_certain_key_order,
    figure_11_sorted_alternatives,
    figure_13_uncertain_key_ranking,
    figure_14_alternative_key_blocking,
    section_4a_flat_example,
    section_4b_derivations,
)
from repro.experiments.fusion_study import run_e6_fusion_quality
from repro.experiments.quality import (
    run_e1_decision_models,
    run_e2_derivations,
)
from repro.experiments.reduction_study import (
    run_e3_reduction,
    run_e3_window_sweep,
)
from repro.experiments.tables import render_mapping_table, render_table


def report_figures() -> str:
    """All paper-exact reproductions, one block per figure."""
    blocks: list[str] = []

    flat = section_4a_flat_example()
    blocks.append(
        render_table(
            ["quantity", "paper", "measured"],
            [
                ["sim(t11.name, t22.name)", "0.9", flat.name_similarity],
                ["sim(t11.job, t22.job)", "0.59", flat.job_similarity],
                ["sim(t11, t22)", "0.838", flat.tuple_similarity],
            ],
            title="§IV-A worked example (Figure 4 relations)",
            precision=6,
        )
    )

    worlds = figure_7_possible_worlds()
    blocks.append(
        render_table(
            ["world", "paper P(I)", "measured P(I)"],
            [
                [f"I{i + 1}", paper, measured]
                for i, (paper, measured) in enumerate(
                    zip(
                        (0.24, 0.16, 0.32, 0.08, 0.06, 0.04, 0.08, 0.02),
                        worlds.world_probabilities,
                    )
                )
            ]
            + [["P(B)", 0.72, worlds.presence_probability]],
            title="Figure 7: possible worlds of {t32, t42}",
        )
    )

    derivations = section_4b_derivations()
    blocks.append(
        render_table(
            ["quantity", "paper", "measured"],
            [
                ["sim(t32^1, t42)", "11/15", derivations.alternative_similarities[0]],
                ["sim(t32^2, t42)", "7/15", derivations.alternative_similarities[1]],
                ["sim(t32^3, t42)", "4/15", derivations.alternative_similarities[2]],
                ["similarity-based sim (Eq. 6)", "7/15", derivations.similarity_based],
                ["statuses η(t32^i, t42)", "m,p,u", ",".join(derivations.alternative_statuses)],
                ["P(m)", "3/9", derivations.p_match],
                ["P(u)", "4/9", derivations.p_unmatch],
                ["decision-based sim (Eq. 7)", "0.75", derivations.decision_based],
                ["expected matching result", "-", derivations.expected_matching_result],
            ],
            title="§IV-B worked example: derivations on (t32, t42)",
            precision=6,
        )
    )

    orders = figure_9_sorted_world_orders()
    blocks.append(
        render_table(
            ["world", "paper order", "measured order"],
            [
                ["I1", "t31 t41 t43 t32 t42", " ".join(orders["I1"])],
                ["I2", "t32 t43 t31 t41 t42", " ".join(orders["I2"])],
            ],
            title="Figure 9: multi-pass SNM orders per world",
        )
    )

    blocks.append(
        render_table(
            ["key", "tuple"],
            figure_10_certain_key_order(),
            title="Figure 10: certain keys (most probable alternative)",
        )
    )

    fig11 = figure_11_sorted_alternatives()
    blocks.append(
        render_table(
            ["key", "tuple"],
            fig11["deduped_entries"],
            title=(
                "Figure 11: sorting alternatives "
                f"({len(fig11['sorted_entries'])} entries, "
                f"{len(fig11['deduped_entries'])} after neighbor dedup)"
            ),
        )
    )
    blocks.append(
        "Figure 12: matchings at window=2 (paper: 5): "
        + ", ".join(f"({a},{b})" for a, b in fig11["matchings"])
    )

    fig13 = figure_13_uncertain_key_ranking()
    rows = []
    for tuple_id, distribution in fig13["key_distributions"]:
        rows.append(
            [
                tuple_id,
                ", ".join(f"{k}:{p:g}" for k, p in distribution),
            ]
        )
    blocks.append(
        render_table(
            ["tuple", "uncertain key distribution"],
            rows,
            title=(
                "Figure 13: uncertain keys; ranked order = "
                + " ".join(fig13["ranked_ids"])
                + " (paper: t32 t31 t41 t43 t42)"
            ),
        )
    )

    fig14 = figure_14_alternative_key_blocking()
    blocks.append(
        render_table(
            ["block", "members"],
            [
                [key, " ".join(members)]
                for key, members in fig14["blocks"].items()
            ],
            title=(
                "Figure 14: alternative-key blocking "
                f"({fig14['block_count']} blocks, paper: 6); matchings: "
                + ", ".join(f"({a},{b})" for a, b in fig14["matchings"])
            ),
        )
    )
    return "\n\n".join(blocks)


def report_e1(entity_count: int = 120, seed: int = 11) -> str:
    """E1: decision-model quality table."""
    rows = [row.as_dict() for row in run_e1_decision_models(
        entity_count=entity_count, seed=seed
    )]
    return render_mapping_table(
        rows,
        title="E1: decision models × uncertainty profiles "
        f"(n={entity_count} entities, flat relations)",
    )


def report_e2(entity_count: int = 100, seed: int = 13) -> str:
    """E2: derivation-function quality table."""
    rows = [row.as_dict() for row in run_e2_derivations(
        entity_count=entity_count, seed=seed
    )]
    return render_mapping_table(
        rows,
        title="E2: derivation functions × uncertainty profiles "
        f"(n={entity_count} entities, x-relations)",
    )


def report_e3(entity_count: int = 150, seed: int = 17) -> str:
    """E3: reduction strategy table plus window sweep."""
    table = render_mapping_table(
        [row.as_dict() for row in run_e3_reduction(
            entity_count=entity_count, seed=seed
        )],
        title=f"E3: search-space reduction (n={entity_count} entities)",
    )
    sweep = render_mapping_table(
        run_e3_window_sweep(entity_count=entity_count, seed=seed),
        title="E3b: SNM window sweep",
    )
    return table + "\n\n" + sweep


def report_e6(entity_count: int = 120, seed: int = 19) -> str:
    """E6: fusion quality table."""
    rows = [
        row.as_dict()
        for row in run_e6_fusion_quality(
            entity_count=entity_count, seed=seed
        )
    ]
    return render_mapping_table(
        rows,
        title=(
            "E6: true-value probability mass before/after fusion "
            f"(pure detected clusters, n={entity_count} entities)"
        ),
    )


SECTIONS = {
    "figures": report_figures,
    "e1": report_e1,
    "e2": report_e2,
    "e3": report_e3,
    "e6": report_e6,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    requested = (argv if argv is not None else sys.argv[1:]) or list(
        SECTIONS
    )
    unknown = [name for name in requested if name not in SECTIONS]
    if unknown:
        print(
            f"unknown sections: {unknown}; available: {list(SECTIONS)}",
            file=sys.stderr,
        )
        return 2
    for name in requested:
        print(f"\n{'=' * 72}\n{name.upper()}\n{'=' * 72}\n")
        print(SECTIONS[name]())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
