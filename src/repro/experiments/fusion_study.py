"""Tier-B experiment E6: does fusion improve value quality?

For every *correctly* detected duplicate cluster, compare how much
probability mass the fused tuple assigns to the entity's true attribute
value against how much the individual source tuples assigned on average
— the measurable version of "fusion reconciles data about the same
real-world entities" (Section I).

Mixture fusion should concentrate mass on corroborated outcomes (true
values recur across records, errors mostly don't), so the fused mass is
expected to beat the source average; the deciding strategies are
reported alongside for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datagen.generator import DatasetConfig, generate_dataset
from repro.fusion.fuse import ValueFusion, collapse_xtuple, fuse_cluster
from repro.fusion.strategies import (
    decide_least_uncertain,
    decide_most_probable,
    mediate_mixture,
)
from repro.experiments.quality import default_matcher, weighted_model
from repro.matching.pipeline import DuplicateDetector
from repro.pdb.values import PatternValue

#: Strategies under comparison.
E6_STRATEGIES: dict[str, ValueFusion] = {
    "mixture": mediate_mixture,
    "most_probable": decide_most_probable,
    "least_uncertain": decide_least_uncertain,
}


def _true_value_mass(value, truth: str) -> float:
    """Probability mass on the true value, counting matching patterns.

    A pattern outcome that matches the truth contributes its full mass —
    a pattern is "correct" when the truth is in its family.
    """
    mass = value.probability(truth)
    for outcome, probability in value.items():
        if isinstance(outcome, PatternValue) and outcome.matches(truth):
            mass += probability
    return mass


@dataclass(frozen=True)
class FusionQualityRow:
    """E6 result for one strategy."""

    strategy: str
    clusters: int
    source_mass: float  # mean true-value mass across source tuples
    fused_mass: float  # mean true-value mass of the fused tuples

    @property
    def gain(self) -> float:
        """Absolute improvement of the fused representation."""
        return self.fused_mass - self.source_mass

    def as_dict(self) -> dict[str, object]:
        """Flatten for table rendering."""
        return {
            "strategy": self.strategy,
            "clusters": self.clusters,
            "source_true_mass": self.source_mass,
            "fused_true_mass": self.fused_mass,
            "gain": self.gain,
        }


def run_e6_fusion_quality(
    *,
    entity_count: int = 120,
    seed: int = 19,
    attribute: str = "name",
) -> list[FusionQualityRow]:
    """E6 over one generated flat dataset.

    Only *pure* detected clusters (all members share the true entity)
    enter the measurement, so fusion quality is not confounded by
    detection errors.
    """
    dataset = generate_dataset(
        DatasetConfig(entity_count=entity_count, seed=seed), flat=True
    )
    relation = dataset.relation
    detector = DuplicateDetector(default_matcher(), weighted_model())
    clustering = detector.detect(relation).clusters()

    # Ground-truth attribute values by entity.
    entity_truths: dict[int, str] = {}
    for xtuple in relation:
        entity = dataset.entity_of[xtuple.tuple_id]
        if entity not in entity_truths:
            # The first record of an entity is generated faithfully; its
            # most probable outcome is the entity's true value.
            marginal = collapse_xtuple(xtuple)[attribute]
            most_probable = marginal.most_probable()
            if isinstance(most_probable, str):
                entity_truths[entity] = most_probable

    pure_clusters: list[tuple[list, str]] = []
    for cluster in clustering.clusters:
        entities = {dataset.entity_of[tid] for tid in cluster}
        if len(entities) != 1:
            continue
        truth = entity_truths.get(next(iter(entities)))
        if truth is None:
            continue
        pure_clusters.append(
            ([relation.get(tid) for tid in cluster], truth)
        )

    rows: list[FusionQualityRow] = []
    for name, strategy in E6_STRATEGIES.items():
        source_masses: list[float] = []
        fused_masses: list[float] = []
        for members, truth in pure_clusters:
            for member in members:
                source_masses.append(
                    _true_value_mass(
                        collapse_xtuple(member)[attribute], truth
                    )
                )
            fused = fuse_cluster(members, value_fusion=strategy)
            fused_masses.append(
                _true_value_mass(
                    fused.alternatives[0].value(attribute), truth
                )
            )
        if not fused_masses:
            continue
        rows.append(
            FusionQualityRow(
                strategy=name,
                clusters=len(pure_clusters),
                source_mass=sum(source_masses) / len(source_masses),
                fused_mass=sum(fused_masses) / len(fused_masses),
            )
        )
    return rows
