"""Tier-B experiment E1/E2: detection quality across models & derivations.

The paper defines the verification metrics (Section III-E) but reports no
measurements.  These studies run the full pipeline over generated
probabilistic data with known ground truth and score every combination:

* **E1** — decision models on flat probabilistic relations
  (knowledge-based rules vs Fellegi–Sunter, both over Equation-5
  attribute similarities), swept over uncertainty profiles.
* **E2** — derivation functions on x-relations (similarity-based Eq. 6 vs
  decision-based Eq. 7 vs expected matching result), same decision model
  underneath.
* **E3** — threshold calibration: conformal vs Neyman–Pearson match
  thresholds fit on labeled scores from one detection run, evaluated by
  held-out false-positive rate against the requested target.

All return structured rows ready for :mod:`repro.experiments.tables`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datagen.generator import DatasetConfig, generate_dataset
from repro.datagen.uncertainty import (
    HEAVY_UNCERTAINTY,
    LIGHT_UNCERTAINTY,
    UncertaintyProfile,
)
from repro.matching.combination import WeightedSum
from repro.matching.comparison import AttributeMatcher
from repro.matching.decision.base import (
    CombinedDecisionModel,
    ThresholdClassifier,
)
from repro.matching.decision.calibration import (
    CALIBRATION_METHODS,
    CalibrationSet,
    calibrate,
    empirical_fpr,
)
from repro.matching.decision.fellegi_sunter import FellegiSunterModel
from repro.matching.decision.rules import (
    IdentificationRule,
    RuleBasedModel,
)
from repro.matching.derivation import (
    ExpectedMatchingResult,
    ExpectedSimilarity,
    MatchingWeight,
    MaximumSimilarity,
    MostProbableWorldSimilarity,
)
from repro.matching.pipeline import DuplicateDetector
from repro.datagen.corpus import JOBS
from repro.similarity.jaro import FAST_JARO_WINKLER
from repro.similarity.uncertain import (
    PatternPolicy,
    UncertainValueComparator,
)
from repro.verification.metrics import (
    PossiblePolicy,
    QualityReport,
    evaluate_detection,
)

#: Default uncertainty sweep of E1/E2.
PROFILES: dict[str, UncertaintyProfile] = {
    "light": LIGHT_UNCERTAINTY,
    "default": UncertaintyProfile(),
    "heavy": HEAVY_UNCERTAINTY,
}


def default_matcher() -> AttributeMatcher:
    """Jaro–Winkler matcher, pattern-aware on the job attribute.

    Generated jobs occasionally arrive as ``mu*``-style pattern values,
    so the job comparator expands them against the corpus lexicon.
    Domain-element memoization is on: both attributes draw from finite
    corpora, so the same string pairs recur across candidate pairs.
    The bounded comparator (:data:`~repro.similarity.FAST_JARO_WINKLER`)
    is bitwise-equal to the unbounded reference without floors and adds
    the length-bound short-circuit under threshold pushdown.
    """
    return AttributeMatcher(
        {
            "name": UncertainValueComparator(FAST_JARO_WINKLER, cache=True),
            "job": UncertainValueComparator(
                FAST_JARO_WINKLER,
                pattern_policy=PatternPolicy.EXPAND,
                pattern_lexicon=JOBS,
                cache=True,
            ),
        }
    )


def knowledge_model() -> RuleBasedModel:
    """A small expert rule set in the spirit of Figure 1."""
    rules = [
        IdentificationRule.build(
            [("name", 0.85), ("job", 0.85)], 0.95, name="both-strong"
        ),
        IdentificationRule.build(
            [("name", 0.92)], 0.8, name="name-near-exact"
        ),
        IdentificationRule.build(
            [("name", 0.8), ("job", 0.5)], 0.7, name="name-strong-job-weak"
        ),
    ]
    return RuleBasedModel(rules, ThresholdClassifier(0.75, 0.5))


def fellegi_sunter_model() -> FellegiSunterModel:
    """An FS model with generic name/job m-u parameters.

    The parameters encode that name agreement is strong match evidence
    (high m, low u) while job agreement is weaker (jobs repeat across
    people); thresholds in the ratio domain with a possible band.
    """
    return FellegiSunterModel(
        m_probabilities={"name": 0.92, "job": 0.7},
        u_probabilities={"name": 0.03, "job": 0.05},
        classifier=ThresholdClassifier(40.0, 2.0),
        agreement_threshold=0.82,
    )


def weighted_model(
    t_mu: float = 0.9, t_lambda: float = 0.78
) -> CombinedDecisionModel:
    """The paper-style weighted-sum model for derivation comparisons.

    Equal weights with tight thresholds: the corpus contains many
    near-duplicate names (Anna/Anne, Carl/Karl), so strong agreement on
    both attributes is required for acceptable precision.
    """
    return CombinedDecisionModel(
        WeightedSum({"name": 0.5, "job": 0.5}),
        ThresholdClassifier(t_mu, t_lambda),
        name="weighted",
    )


@dataclass(frozen=True)
class QualityRow:
    """One result row of E1/E2."""

    experiment: str
    configuration: str
    profile: str
    report: QualityReport

    def as_dict(self) -> dict[str, object]:
        """Flatten for table rendering."""
        row: dict[str, object] = {
            "experiment": self.experiment,
            "configuration": self.configuration,
            "profile": self.profile,
        }
        metrics = self.report.as_dict()
        for key in ("precision", "recall", "f1", "fn_rate", "fp_rate"):
            row[key] = metrics[key]
        row["tp"] = metrics["tp"]
        row["fp"] = metrics["fp"]
        row["fn"] = metrics["fn"]
        return row


def run_e1_decision_models(
    *,
    entity_count: int = 120,
    seed: int = 11,
    possible_policy: str = PossiblePolicy.AS_MATCH,
) -> list[QualityRow]:
    """E1: knowledge-based vs Fellegi–Sunter on flat relations."""
    matcher = default_matcher()
    models = {
        "knowledge_rules": knowledge_model,
        "fellegi_sunter": fellegi_sunter_model,
        "weighted_sum": weighted_model,
    }
    rows: list[QualityRow] = []
    for profile_name, profile in PROFILES.items():
        dataset = generate_dataset(
            DatasetConfig(
                entity_count=entity_count,
                profile=profile,
                seed=seed,
            ),
            flat=True,
        )
        for model_name, factory in models.items():
            detector = DuplicateDetector(matcher, factory())
            result = detector.detect(dataset.relation)
            report = evaluate_detection(
                result,
                dataset.true_matches,
                possible_policy=possible_policy,
            )
            rows.append(
                QualityRow("E1", model_name, profile_name, report)
            )
    return rows


def run_e2_derivations(
    *,
    entity_count: int = 100,
    seed: int = 13,
    possible_policy: str = PossiblePolicy.AS_MATCH,
) -> list[QualityRow]:
    """E2: derivation functions ϑ on multi-alternative x-relations.

    The similarity-based expectation (Eq. 6) is classified by the model's
    normalized thresholds; the decision-based matching weight (Eq. 7)
    needs ratio-domain thresholds (T_λ < 1 < T_μ); the expected matching
    result lives in [0, 2].
    """
    matcher = default_matcher()
    derivations = {
        "expected_similarity": (
            ExpectedSimilarity(),
            None,  # reuse the model's normalized thresholds
        ),
        "most_probable_world": (MostProbableWorldSimilarity(), None),
        "maximum_similarity": (MaximumSimilarity(), None),
        "matching_weight": (
            MatchingWeight(),
            ThresholdClassifier(1.5, 0.5),
        ),
        "expected_matching_result": (
            ExpectedMatchingResult(),
            ThresholdClassifier(1.2, 0.6),
        ),
    }
    rows: list[QualityRow] = []
    for profile_name, profile in PROFILES.items():
        dataset = generate_dataset(
            DatasetConfig(
                entity_count=entity_count,
                profile=profile,
                seed=seed,
            ),
        )
        for derivation_name, (derivation, classifier) in derivations.items():
            detector = DuplicateDetector(
                matcher,
                weighted_model(),
                derivation=derivation,
                final_classifier=classifier,
            )
            result = detector.detect(dataset.relation)
            report = evaluate_detection(
                result,
                dataset.true_matches,
                possible_policy=possible_policy,
            )
            rows.append(
                QualityRow("E2", derivation_name, profile_name, report)
            )
    return rows


@dataclass(frozen=True)
class CalibrationRow:
    """One result row of E3: a (method, target) calibration outcome."""

    method: str
    target_fpr: float
    threshold: float
    holdout_fpr: float
    feasible: bool
    gate_trips: tuple[str, ...]

    def as_dict(self) -> dict[str, object]:
        """Flatten for table rendering."""
        return {
            "method": self.method,
            "target_fpr": self.target_fpr,
            "threshold": self.threshold,
            "holdout_fpr": self.holdout_fpr,
            "feasible": self.feasible,
            "gate_trips": ",".join(self.gate_trips) or "-",
        }


def run_e3_calibration(
    *,
    entity_count: int = 120,
    seed: int = 11,
    targets: tuple[float, ...] = (0.01, 0.05, 0.1),
    holdout_fraction: float = 0.5,
    split_seed: int = 20100301,
) -> list[CalibrationRow]:
    """E3: conformal vs NP thresholds, scored by held-out FPR.

    One detection run over a labeled flat relation produces the scored
    pairs; the resulting :class:`CalibrationSet` is split into a fit and
    a holdout half.  Each (method, target) combination is calibrated on
    the fit half and judged by the empirical false-positive rate its
    threshold attains on the holdout non-match scores.  Conformal
    thresholds are conservative (holdout FPR at or below target up to
    finite-sample noise); NP thresholds track the target more tightly
    but without the finite-sample guarantee.
    """
    matcher = default_matcher()
    model = weighted_model()
    dataset = generate_dataset(
        DatasetConfig(entity_count=entity_count, seed=seed),
        flat=True,
    )
    detector = DuplicateDetector(matcher, model)
    result = detector.detect(dataset.relation)
    pairs = CalibrationSet.from_result(result, dataset.true_matches)
    fit, holdout = pairs.split(
        holdout_fraction=holdout_fraction, seed=split_seed
    )
    rows: list[CalibrationRow] = []
    for method in CALIBRATION_METHODS:
        for target in targets:
            calibrated = calibrate(
                model, fit, method=method, target_fpr=target
            )
            calibration = calibrated.calibration
            rows.append(
                CalibrationRow(
                    method=method,
                    target_fpr=target,
                    threshold=calibration.threshold,
                    holdout_fpr=empirical_fpr(
                        calibration.threshold, holdout.nonmatch_scores
                    ),
                    feasible=calibration.feasible,
                    gate_trips=tuple(
                        trip.gate for trip in calibrated.gate_trips
                    ),
                )
            )
    return rows
