"""Selecting probable, pairwise dissimilar worlds (Section V-A.1).

A multi-pass over *all* possible worlds is usually infeasible, and the
most probable worlds tend to be nearly identical, so passes over them are
redundant: "a set of highly probable and pairwise dissimilar worlds has
to be chosen, but this requires comparison techniques on complete
worlds."

We implement exactly that comparison technique plus a greedy selector:

* world similarity = fraction of x-tuples on which two worlds agree
  (:func:`repro.pdb.worlds.world_overlap`);
* greedy maximum-diversity selection: start from the most probable world,
  then repeatedly add the world maximizing
  ``probability - diversity_weight · max_overlap_with_selected``.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.pdb.worlds import PossibleWorld, world_overlap


def select_probable_worlds(
    worlds: Sequence[PossibleWorld], count: int
) -> list[PossibleWorld]:
    """The *count* most probable worlds (ties by enumeration order).

    The naive strategy the paper warns about — kept as the baseline for
    the redundancy ablation (E5).
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return sorted(
        worlds, key=lambda world: -world.probability
    )[:count]


def select_diverse_worlds(
    worlds: Sequence[PossibleWorld],
    count: int,
    *,
    diversity_weight: float = 0.5,
) -> list[PossibleWorld]:
    """Greedy selection of highly probable, pairwise dissimilar worlds.

    Scores a candidate world as
    ``probability − diversity_weight · max(overlap with selected)``;
    the first pick is always the most probable world.  With
    ``diversity_weight = 0`` this degenerates to
    :func:`select_probable_worlds`.

    Parameters
    ----------
    worlds:
        Candidate worlds (typically full worlds, conditioned).
    count:
        Number of worlds to select (capped at ``len(worlds)``).
    diversity_weight:
        Trade-off λ ≥ 0 between probability and dissimilarity.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if diversity_weight < 0.0:
        raise ValueError(
            f"diversity_weight must be >= 0, got {diversity_weight}"
        )
    remaining = list(worlds)
    if not remaining:
        return []
    remaining.sort(key=lambda world: -world.probability)
    selected = [remaining.pop(0)]
    while remaining and len(selected) < count:
        best_index = 0
        best_score = float("-inf")
        for index, candidate in enumerate(remaining):
            redundancy = max(
                world_overlap(candidate, chosen) for chosen in selected
            )
            score = candidate.probability - diversity_weight * redundancy
            if score > best_score:
                best_score = score
                best_index = index
        selected.append(remaining.pop(best_index))
    return selected


def average_pairwise_overlap(worlds: Sequence[PossibleWorld]) -> float:
    """Mean pairwise overlap of a world set (redundancy measure).

    1.0 means all worlds are identical; lower is more diverse.  Used by
    the ablation experiments to quantify the redundancy the paper
    predicts for most-probable-world selections.
    """
    if len(worlds) < 2:
        return 1.0
    total = 0.0
    pairs = 0
    for i, left in enumerate(worlds):
        for right in worlds[i + 1 :]:
            total += world_overlap(left, right)
            pairs += 1
    return total / pairs
