"""SNM with uncertain key values via probabilistic ranking (Section V-A.4).

"Another and w.r.t. effectiveness more promising approach is to allow
uncertain key values and to sort the tuples by using a ranking function
as proposed for probabilistic databases."  Each x-tuple keeps its whole
key distribution; a ranking function over uncertain keys produces the
total order the window slides over — Figure 13's ranked relation.

The ranking functions themselves live in :mod:`repro.pdb.ranking`
(expected rank [35], most-probable key, PRF^e [37]); the default expected
rank reproduces Figure 13 exactly and runs in ``O(n log n)``, the
complexity the paper cites.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence

from repro.pdb.ranking import KeyDistribution, expected_rank_order
from repro.pdb.relations import XRelation
from repro.reduction.keys import SubstringKey, xtuple_key_distribution
from repro.reduction.plan import (
    CandidatePartition,
    CandidatePlan,
    plan_from_window,
    planning_view,
)
from repro.reduction.snm import (
    split_window_partition_by_key,
    window_pairs,
)

#: Signature of a ranking function over `(item, key distribution)` pairs.
RankingFunction = Callable[
    [Sequence[tuple[str, KeyDistribution]]], list[str]
]


class UncertainKeySNM:
    """Sorted Neighborhood over *uncertain* keys.

    Parameters
    ----------
    key:
        Key specification; per-tuple key distributions are built with
        :func:`repro.reduction.keys.xtuple_key_distribution` (conditioned
        on presence, because membership must not influence detection).
    window:
        Window size (≥ 2).
    ranking:
        Ranking function; default expected rank (reproduces Figure 13).
    """

    def __init__(
        self,
        key: SubstringKey,
        window: int = 3,
        *,
        ranking: RankingFunction = expected_rank_order,
    ) -> None:
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        self._key = key
        self._window = window
        self._ranking = ranking

    def key_distributions(
        self, relation: XRelation
    ) -> list[tuple[str, list[tuple[str, float]]]]:
        """``(tuple id, key distribution)`` for every x-tuple.

        The probability-annotated key column of Figure 13 (left).
        """
        return [
            (
                xtuple.tuple_id,
                xtuple_key_distribution(xtuple, self._key),
            )
            for xtuple in planning_view(relation, self._key.attributes)
        ]

    def ranked_ids(self, relation: XRelation) -> list[str]:
        """Tuple ids in ranked order (Figure 13, right)."""
        return self._ranking(self.key_distributions(relation))

    def pairs(self, relation: XRelation) -> Iterator[tuple[str, str]]:
        """Window pairs over the ranked order."""
        return window_pairs(self.ranked_ids(relation), self._window)

    def plan(self, relation: XRelation) -> CandidatePlan:
        """Contiguous spans of the ranked order as partitions.

        The uncertain keys never collapse to certain values: tuples are
        *ranked* by their whole key distribution (Figure 13) and the
        window slides over that ranking, so a span's tuples are
        neighbors in expected-rank space.

        >>> from repro.pdb.relations import XRelation
        >>> from repro.pdb.xtuples import TupleAlternative, XTuple
        >>> from repro.reduction.keys import SubstringKey
        >>> relation = XRelation("R", ("name",), [
        ...     XTuple("t1", (TupleAlternative({"name": "anna"}, 0.7),
        ...                   TupleAlternative({"name": "hanna"}, 0.3))),
        ...     XTuple("t2", (TupleAlternative({"name": "anne"}, 1.0),)),
        ...     XTuple("t3", (TupleAlternative({"name": "zoe"}, 1.0),))])
        >>> plan = UncertainKeySNM(SubstringKey([("name", 2)]), window=2).plan(relation)
        >>> [p.label for p in plan]
        ['rows[0:3]']
        >>> sorted(plan.pairs())
        [('t1', 't2'), ('t1', 't3')]
        """
        return plan_from_window(
            self.ranked_ids(relation),
            self._window,
            relation_size=len(relation),
            source=repr(self),
        )

    def split_partition(
        self,
        relation,
        partition: "CandidatePartition",
        *,
        max_pairs: int,
    ) -> "list[CandidatePartition] | None":
        """Skew hook: subdivide one oversized ranked span by key range.

        Members bucket by their *most probable* key — a locality proxy
        for the expected-rank order; the regrouping is an exact pair
        cover either way, so decisions never change (see
        :func:`split_window_partition_by_key`).
        """
        return split_window_partition_by_key(
            relation, partition, self._key, max_pairs=max_pairs
        )

    def __repr__(self) -> str:
        ranking_name = getattr(
            self._ranking, "__name__", repr(self._ranking)
        )
        return (
            f"UncertainKeySNM(key={self._key!r}, window={self._window}, "
            f"ranking={ranking_name})"
        )
