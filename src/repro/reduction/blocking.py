"""Blocking and its probabilistic adaptations (Section V-B, Figure 14).

"With blocking, the considered tuples are partitioned into mutually
exclusive blocks … only tuples in one block are compared with each
other."  For probabilistic data the paper lists four handlings, all
implemented here:

* **multi-pass blocking** over (finely chosen) possible worlds —
  :class:`MultiPassBlocking`;
* **certain keys via conflict resolution** (e.g. most probable
  alternative) — :class:`CertainKeyBlocking`;
* **alternative-key blocking** — an x-tuple is inserted into one block
  per alternative key value; within a block, repeated entries of the same
  tuple are removed (Figure 14) — :class:`AlternativeKeyBlocking`;
* **clustering of uncertain keys** — blocks from clustering the key
  *distributions* ([38]–[40]) — :class:`UncertainKeyClusteringBlocking`
  in :mod:`repro.reduction.uncertain_clustering`.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Mapping

from repro.pdb.relations import XRelation
from repro.pdb.storage.base import fetch_tuples
from repro.pdb.worlds import PossibleWorld, enumerate_full_worlds
from repro.pdb.xtuples import XTuple
from repro.reduction.keys import (
    SubstringKey,
    alternative_key_distribution,
    most_probable_key,
)
from repro.reduction.plan import (
    CandidatePartition,
    CandidatePlan,
    PlanBuilder,
    ordered_pair as _ordered,
    plan_from_blocks,
    planning_view,
    split_partition_by_groups,
    within_block_pairs,
)
from repro.reduction.world_selection import (
    select_diverse_worlds,
    select_probable_worlds,
)

#: How many times a block split may double the sub-key lengths before
#: giving up (the scheduler then falls back to contiguous banding).
SPLIT_REFINEMENT_LIMIT = 4

#: Member tuples fetched per batch while computing refined sub-keys, so
#: splitting a giant block of an out-of-core store never pins more than
#: this many decoded tuples beyond the store's page cache.
SPLIT_FETCH_BATCH = 512


def refine_key(key: SubstringKey, factor: int = 2) -> SubstringKey:
    """A finer sub-key: every part keeps ``factor``× more characters.

    The natural refinement of the paper's prefix keys — tuples sharing
    a 1-character block key scatter over their 2-character keys — used
    by the blocking family's ``split_partition`` hook to subdivide
    skewed blocks without changing which pairs are compared.
    """
    if factor < 2:
        raise ValueError(f"refinement factor must be >= 2, got {factor}")
    return SubstringKey(
        [(attribute, length * factor) for attribute, length in key.parts]
    )


def split_block_by_refined_key(
    relation,
    partition: CandidatePartition,
    key: SubstringKey,
    member_key: Callable[[XTuple, SubstringKey], str],
    *,
    max_pairs: int,
    refinement_limit: int = SPLIT_REFINEMENT_LIMIT,
) -> list[CandidatePartition] | None:
    """Subdivide one block partition by progressively finer sub-keys.

    Members are grouped by their refined key value (doubling part
    lengths per refinement level); every candidate pair lands in the
    sub-partition of its endpoint groups, so the split covers the
    block's pairs exactly once whatever grouping wins.  The coarsest
    level whose largest sub-partition fits ``max_pairs`` is preferred;
    if no level within the refinement limit fits, the finest level that
    subdivides at all is returned, and ``None`` (scheduler falls back
    to banding) when the members never separate — or when a pattern
    value cannot produce the longer key piece.
    """
    # One batch of decoded tuples at a time: every refinement level's
    # key is computed while the batch is resident, and only the id →
    # key strings survive — splitting a giant block of an out-of-core
    # store never pins more than SPLIT_FETCH_BATCH decoded tuples
    # beyond the store's page cache.
    refined_keys = [
        refine_key(key, 2**level) for level in range(1, refinement_limit + 1)
    ]
    groups_per_level: list[dict[str, str]] = [{} for _ in refined_keys]
    valid_levels = len(refined_keys)
    ids = partition.members
    for start in range(0, len(ids), SPLIT_FETCH_BATCH):
        batch = ids[start : start + SPLIT_FETCH_BATCH]
        working_set = fetch_tuples(relation, batch)
        for tuple_id in batch:
            xtuple = working_set[tuple_id]
            for index in range(valid_levels):
                try:
                    piece = member_key(xtuple, refined_keys[index])
                except ValueError:
                    # Pattern prefixes shorter than the refined part
                    # length cannot key — and every finer level only
                    # asks for longer pieces.  Drop this level and all
                    # finer ones; the scheduler bands if none is left.
                    valid_levels = index
                    del groups_per_level[index:]
                    break
                groups_per_level[index][tuple_id] = piece
    best: list[CandidatePartition] | None = None
    for groups in groups_per_level[:valid_levels]:
        if len(set(groups.values())) <= 1:
            continue
        split = split_partition_by_groups(partition, groups)
        best = split
        if max(len(sub) for sub in split) <= max_pairs:
            return split
    return best


def pairs_from_blocks(
    blocks: Mapping[str, list[str]],
) -> Iterator[tuple[str, str]]:
    """All unordered within-block pairs, each emitted once.

    Tuples may appear in several blocks (alternative-key blocking), so a
    matching matrix suppresses repeats across blocks.
    """
    emitted: set[tuple[str, str]] = set()
    for members in blocks.values():
        for i, left in enumerate(members):
            for right in members[i + 1 :]:
                if left == right:
                    continue
                pair = _ordered(left, right)
                if pair not in emitted:
                    emitted.add(pair)
                    yield pair


class CertainKeyBlocking:
    """Blocking on one certain key per x-tuple (Section V-B).

    "Conflict resolution strategies can be used to produce certain key
    values.  In this case, blocking can be performed as usual."  The
    default strategy picks the most probable key value (metadata-based
    deciding, as in Section V-A.2).
    """

    def __init__(
        self,
        key: SubstringKey,
        *,
        key_strategy: Callable[[XTuple, SubstringKey], str] = most_probable_key,
    ) -> None:
        self._key = key
        self._key_strategy = key_strategy

    def blocks(self, relation: XRelation) -> dict[str, list[str]]:
        """Partition: ``key value → member tuple ids``.

        The scan reads nothing but the key attributes (and alternative
        probabilities), so key extraction runs over
        :func:`~repro.reduction.plan.planning_view` — columnar stores
        serve it from the keyed columns alone.
        """
        blocks: dict[str, list[str]] = {}
        for xtuple in planning_view(relation, self._key.attributes):
            key_value = self._key_strategy(xtuple, self._key)
            blocks.setdefault(key_value, []).append(xtuple.tuple_id)
        return blocks

    @property
    def prune_key(self) -> SubstringKey:
        """The equality key candidate pairs must share.

        Blocking admits a pair only when both sides produce the *same*
        block key, so disjoint key ranges between two sources prove the
        absence of cross pairs — the zone-map pruning contract of
        :func:`repro.matching.executor.multisource.prune_disjoint_sources`.
        (Window- and radius-based reducers pair *nearby* keys and must
        not expose this.)
        """
        return self._key

    def pairs(self, relation: XRelation) -> Iterator[tuple[str, str]]:
        """Within-block candidate pairs."""
        return pairs_from_blocks(self.blocks(relation))

    def plan(self, relation: XRelation) -> CandidatePlan:
        """One partition per block — the natural scheduling unit.

        Blocks whose single member can form no pair are dropped; each
        surviving partition carries exactly its block's within-block
        pairs, so a worker's cache working set covers one key
        neighborhood.

        >>> from repro.pdb.relations import XRelation
        >>> from repro.pdb.xtuples import TupleAlternative, XTuple
        >>> from repro.reduction.keys import SubstringKey
        >>> relation = XRelation("R", ("name",), [
        ...     XTuple(t, (TupleAlternative({"name": n}, 1.0),))
        ...     for t, n in [("t1", "anna"), ("t2", "anne"), ("t3", "bob")]])
        >>> plan = CertainKeyBlocking(SubstringKey([("name", 1)])).plan(relation)
        >>> [(p.label, p.pairs) for p in plan]
        [('block:a', (('t1', 't2'),))]
        """
        return plan_from_blocks(
            self.blocks(relation),
            relation_size=len(relation),
            source=repr(self),
        )

    def split_partition(
        self,
        relation,
        partition: CandidatePartition,
        *,
        max_pairs: int,
    ) -> list[CandidatePartition] | None:
        """Skew hook: subdivide one oversized block by a refined key.

        Members are regrouped by the same conflict-resolution strategy
        over doubled key-part lengths (see
        :func:`split_block_by_refined_key`); which pairs are compared —
        and their decisions — never changes.
        """
        return split_block_by_refined_key(
            relation,
            partition,
            self._key,
            self._key_strategy,
            max_pairs=max_pairs,
        )

    def __repr__(self) -> str:
        return f"CertainKeyBlocking(key={self._key!r})"


class AlternativeKeyBlocking:
    """Blocking with one block entry per alternative key (Figure 14).

    "Similar to the approach of sorting alternatives an x-tuple can be
    inserted into multiple blocks by creating a key for each alternative.
    … If an x-tuple is allocated to a single block for multiple times,
    except for one, all entries of this tuple are removed."
    """

    def __init__(self, key: SubstringKey) -> None:
        self._key = key

    @property
    def prune_key(self) -> SubstringKey:
        """Equality key shared by all candidate pairs (see
        :attr:`CertainKeyBlocking.prune_key`)."""
        return self._key

    def blocks(self, relation: XRelation) -> dict[str, list[str]]:
        """``key value → member tuple ids`` with in-block tuple dedup."""
        blocks: dict[str, list[str]] = {}
        for xtuple in planning_view(relation, self._key.attributes):
            key_values: list[str] = []
            for alternative in xtuple.alternatives:
                for key_value, _ in alternative_key_distribution(
                    alternative, self._key
                ):
                    if key_value not in key_values:
                        key_values.append(key_value)
            for key_value in key_values:
                members = blocks.setdefault(key_value, [])
                if xtuple.tuple_id not in members:
                    members.append(xtuple.tuple_id)
        return blocks

    def pairs(self, relation: XRelation) -> Iterator[tuple[str, str]]:
        """Within-block candidate pairs (across-block repeats removed)."""
        return pairs_from_blocks(self.blocks(relation))

    def plan(self, relation: XRelation) -> CandidatePlan:
        """One partition per block, repeats claimed by the first block.

        The plan builder's global dedup reproduces the Figure-14
        matching-matrix discipline across partitions.

        >>> from repro.pdb.relations import XRelation
        >>> from repro.pdb.xtuples import TupleAlternative, XTuple
        >>> from repro.reduction.keys import SubstringKey
        >>> uncertain = XTuple("t1", (
        ...     TupleAlternative({"name": "anna"}, 0.5),
        ...     TupleAlternative({"name": "hanna"}, 0.5)))
        >>> certain = XTuple("t2", (TupleAlternative({"name": "hans"}, 1.0),))
        >>> relation = XRelation("R", ("name",), [uncertain, certain])
        >>> plan = AlternativeKeyBlocking(SubstringKey([("name", 1)])).plan(relation)
        >>> [(p.label, p.pairs) for p in plan]  # t1 joins blocks 'a' and 'h'
        [('block:h', (('t1', 't2'),))]
        """
        return plan_from_blocks(
            self.blocks(relation),
            relation_size=len(relation),
            source=repr(self),
        )

    def split_partition(
        self,
        relation,
        partition: CandidatePartition,
        *,
        max_pairs: int,
    ) -> list[CandidatePartition] | None:
        """Skew hook: subdivide one oversized block by a refined key.

        A member may sit in the block through any of its alternatives;
        grouping by the most probable refined key is still an exact
        cover (the grouping only steers locality — every pair lands in
        exactly one sub-partition), it merely concentrates each
        member's likeliest neighbors in one unit.
        """
        return split_block_by_refined_key(
            relation,
            partition,
            self._key,
            most_probable_key,
            max_pairs=max_pairs,
        )

    def __repr__(self) -> str:
        return f"AlternativeKeyBlocking(key={self._key!r})"


class MultiPassBlocking:
    """Blocking repeated over selected possible worlds (Section V-B).

    "As for the sorted neighborhood method, a multi-pass approach over
    all possible worlds is most often not efficient.  However, a
    multi-pass over some finely chosen worlds seems to be an option."
    World selection reuses :mod:`repro.reduction.world_selection`.
    """

    def __init__(
        self,
        key: SubstringKey,
        *,
        selection: str = "diverse",
        world_count: int = 3,
        diversity_weight: float = 0.5,
        max_worlds: int = 100_000,
    ) -> None:
        if selection not in ("all", "most_probable", "diverse"):
            raise ValueError(f"unknown world selection {selection!r}")
        if world_count < 1:
            raise ValueError(f"world_count must be >= 1, got {world_count}")
        self._key = key
        self._selection = selection
        self._world_count = world_count
        self._diversity_weight = diversity_weight
        self._max_worlds = max_worlds

    def select_worlds(self, relation: XRelation) -> list[PossibleWorld]:
        """The worlds blocked over (full worlds, conditioned)."""
        # Pass the relation itself: storage backends have no ``.xtuples``
        # property.  Enumeration still materializes the x-tuple list —
        # acceptable, since world passes are only tractable for small
        # relations anyway.
        worlds = enumerate_full_worlds(
            relation, max_worlds=self._max_worlds
        )
        if self._selection == "all":
            return worlds
        if self._selection == "most_probable":
            return select_probable_worlds(worlds, self._world_count)
        return select_diverse_worlds(
            worlds,
            self._world_count,
            diversity_weight=self._diversity_weight,
        )

    def blocks_for_world(
        self, relation: XRelation, world: PossibleWorld
    ) -> dict[str, list[str]]:
        """Certain-key blocks of one world."""
        blocks: dict[str, list[str]] = {}
        for xtuple in planning_view(relation, self._key.attributes):
            index = world.alternative_index(xtuple.tuple_id)
            if index is None:
                continue
            alternative = xtuple.alternatives[index]
            assignment = {
                attribute: alternative.value(attribute).most_probable()
                for attribute in alternative.attributes
            }
            key_value = self._key.for_assignment(assignment)
            blocks.setdefault(key_value, []).append(xtuple.tuple_id)
        return blocks

    def pairs(self, relation: XRelation) -> Iterator[tuple[str, str]]:
        """Union of within-block pairs over all selected worlds."""
        emitted: set[tuple[str, str]] = set()
        for world in self.select_worlds(relation):
            for pair in pairs_from_blocks(
                self.blocks_for_world(relation, world)
            ):
                if pair not in emitted:
                    emitted.add(pair)
                    yield pair

    def plan(self, relation: XRelation) -> CandidatePlan:
        """One partition per (world, block); later worlds keep only new pairs.

        >>> from repro.pdb.relations import XRelation
        >>> from repro.pdb.xtuples import TupleAlternative, XTuple
        >>> from repro.reduction.keys import SubstringKey
        >>> relation = XRelation("R", ("name",), [
        ...     XTuple("t1", (TupleAlternative({"name": "anna"}, 0.6),
        ...                   TupleAlternative({"name": "hanna"}, 0.4))),
        ...     XTuple("t2", (TupleAlternative({"name": "anne"}, 1.0),))])
        >>> reducer = MultiPassBlocking(SubstringKey([("name", 1)]),
        ...                             selection="most_probable",
        ...                             world_count=1)
        >>> [(p.label, p.pairs) for p in reducer.plan(relation)]
        [('world0:a', (('t1', 't2'),))]
        """
        builder = PlanBuilder()
        for index, world in enumerate(self.select_worlds(relation)):
            for key, members in self.blocks_for_world(
                relation, world
            ).items():
                builder.add(
                    f"world{index}:{key}", within_block_pairs(members)
                )
        return builder.build(
            relation_size=len(relation), source=repr(self)
        )

    def __repr__(self) -> str:
        return (
            f"MultiPassBlocking(key={self._key!r}, "
            f"selection={self._selection!r}, k={self._world_count})"
        )
