"""Key creation for sorting and blocking (Section V).

Both Sorted-Neighborhood and blocking need a *key* derived from attribute
values — the paper's example: "the first three characters of the name
value and the first two characters of the job value".  With probabilistic
data the key itself may be uncertain; this module provides

* :class:`SubstringKey` — the paper's prefix-concatenation keys;
* key creation for certain rows (:meth:`SubstringKey.for_assignment`);
* key *distributions* for alternatives and whole x-tuples
  (:func:`alternative_key_distribution`,
  :func:`xtuple_key_distribution`) — the input of the uncertain-key
  strategies (Sections V-A.3, V-A.4, V-B).

Value handling mirrors the paper's figures:

* ⊥ contributes the empty string — tuple ``t43``'s alternative
  ``(John, ⊥)`` gets the key ``Joh`` (Figures 9 and 13);
* a pattern value whose fixed prefix covers the requested length
  contributes that prefix — ``mu*`` under a 2-character job key yields
  ``mu`` (the key ``Johmu`` of Figure 13); shorter prefixes require
  expansion and raise otherwise.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import Any, Protocol, runtime_checkable

from repro.pdb.values import NULL, PatternValue, ProbabilisticValue
from repro.pdb.xtuples import TupleAlternative, XTuple


@runtime_checkable
class KeyFunction(Protocol):
    """Maps one concrete attribute assignment to a sorting/blocking key."""

    def for_assignment(
        self, assignment: Mapping[str, Any]
    ) -> str:  # pragma: no cover
        ...


class SubstringKey:
    """Concatenation of attribute-value prefixes.

    Parameters
    ----------
    parts:
        ``(attribute, length)`` pairs; the key is the concatenation of
        ``str(value)[:length]`` in the given order.

    Examples
    --------
    The paper's sorting key: ``SubstringKey([("name", 3), ("job", 2)])``
    maps ``(John, pilot)`` to ``"Johpi"``.  The paper's blocking key:
    ``SubstringKey([("name", 1), ("job", 1)])`` maps it to ``"Jp"``.
    """

    def __init__(self, parts: Sequence[tuple[str, int]]) -> None:
        if not parts:
            raise ValueError("a key needs at least one part")
        for attribute, length in parts:
            if length < 1:
                raise ValueError(
                    f"part length for {attribute!r} must be >= 1, "
                    f"got {length}"
                )
        self._parts = tuple((str(a), int(n)) for a, n in parts)

    @property
    def parts(self) -> tuple[tuple[str, int], ...]:
        """The ``(attribute, length)`` specification."""
        return self._parts

    @property
    def attributes(self) -> tuple[str, ...]:
        """Attributes the key reads."""
        return tuple(attribute for attribute, _ in self._parts)

    def _piece(self, value: Any, length: int) -> str:
        if value is NULL:
            return ""
        if isinstance(value, PatternValue):
            if len(value.prefix) >= length:
                return value.prefix[:length]
            raise ValueError(
                f"pattern {value.pattern!r} has a prefix shorter than the "
                f"key part length {length}; expand the pattern first"
            )
        return str(value)[:length]

    def for_assignment(self, assignment: Mapping[str, Any]) -> str:
        """Key of one concrete (certain) attribute assignment."""
        return "".join(
            self._piece(assignment[attribute], length)
            for attribute, length in self._parts
        )

    def __repr__(self) -> str:
        return f"SubstringKey({list(self._parts)!r})"


def _value_outcomes(
    value: ProbabilisticValue, length: int, key: SubstringKey
) -> list[tuple[str, float]]:
    """Key pieces of one (possibly uncertain) attribute value."""
    outcomes: dict[str, float] = {}
    for outcome, probability in value.items():
        piece = key._piece(outcome, length)
        outcomes[piece] = outcomes.get(piece, 0.0) + probability
    return list(outcomes.items())


def alternative_key_distribution(
    alternative: TupleAlternative, key: SubstringKey
) -> list[tuple[str, float]]:
    """Key distribution of one alternative, *within* that alternative.

    Certain alternatives yield a single key with probability 1.  Uncertain
    attribute values multiply out (independence within an alternative);
    equal keys merge.  The alternative's own probability is *not* folded
    in — callers combine it as needed.
    """
    pieces_per_part: list[list[tuple[str, float]]] = [
        _value_outcomes(alternative.value(attribute), length, key)
        for attribute, length in key.parts
    ]
    keys: dict[str, float] = {"": 1.0}
    for part_outcomes in pieces_per_part:
        next_keys: dict[str, float] = {}
        for prefix, prefix_prob in keys.items():
            for piece, piece_prob in part_outcomes:
                candidate = prefix + piece
                next_keys[candidate] = (
                    next_keys.get(candidate, 0.0) + prefix_prob * piece_prob
                )
        keys = next_keys
    return list(keys.items())


def xtuple_key_distribution(
    xtuple: XTuple, key: SubstringKey, *, conditioned: bool = True
) -> list[tuple[str, float]]:
    """Key distribution of a whole x-tuple.

    Aggregates the alternatives' key distributions weighted by their
    (by default conditioned) probabilities; equal keys merge — the paper
    notes ``t41`` "has a certain key value despite of having two
    alternative tuples" because both alternatives map to ``Johpi``.
    """
    weighted: dict[str, float] = {}
    pairs = (
        xtuple.conditioned_alternatives()
        if conditioned
        else [(alt, alt.probability) for alt in xtuple.alternatives]
    )
    for alternative, weight in pairs:
        for candidate, probability in alternative_key_distribution(
            alternative, key
        ):
            weighted[candidate] = (
                weighted.get(candidate, 0.0) + weight * probability
            )
    return list(weighted.items())


def most_probable_key(
    xtuple: XTuple, key: SubstringKey
) -> str:
    """The modal key value of an x-tuple (ties by first occurrence)."""
    distribution = xtuple_key_distribution(xtuple, key)
    best_key, best_prob = distribution[0]
    for candidate, probability in distribution[1:]:
        if probability > best_prob + 1e-12:
            best_key, best_prob = candidate, probability
    return best_key


def keys_of_world_assignment(
    assignments: Mapping[str, Mapping[str, Any]], key: SubstringKey
) -> dict[str, str]:
    """Certain keys for a full world: ``tuple id → key value``."""
    return {
        tuple_id: key.for_assignment(assignment)
        for tuple_id, assignment in assignments.items()
    }


def expand_pattern_keys(
    xtuple: XTuple,
    key: SubstringKey,
    lexicons: Mapping[str, Iterable[str]],
) -> XTuple:
    """Pre-expand pattern values that are too short for the key parts.

    Convenience wrapper: returns the x-tuple with patterns expanded for
    exactly the attributes the key reads, leaving others untouched.
    """
    relevant = {
        attribute: lexicon
        for attribute, lexicon in lexicons.items()
        if attribute in key.attributes
    }
    return xtuple.expand_patterns(relevant) if relevant else xtuple
