"""Search-space reduction adapted to probabilistic data (Section V).

Sorted-Neighborhood family (Section V-A):

* :class:`SortedNeighborhood` — classic SNM over certain(ized) keys;
* :class:`MultiPassSNM` — one pass per (selected) possible world
  (V-A.1), with world selection in :mod:`~repro.reduction.world_selection`;
* certain keys by conflict resolution (V-A.2) — the default
  ``key_strategy`` of :class:`SortedNeighborhood`
  (:func:`~repro.reduction.keys.most_probable_key`);
* :class:`AlternativeSorting` — sorting alternatives with neighbor dedup
  and the Figure-12 matching matrix (V-A.3);
* :class:`UncertainKeySNM` — ranking-based SNM on uncertain keys (V-A.4).

Blocking family (Section V-B):

* :class:`CertainKeyBlocking`, :class:`AlternativeKeyBlocking`
  (Figure 14), :class:`MultiPassBlocking`,
  :class:`UncertainKeyClusteringBlocking` (clustering of uncertain keys).

All strategies implement the ``pairs(relation)`` protocol of
:class:`repro.matching.pipeline.PairGenerator` and can be plugged into
:class:`repro.matching.DuplicateDetector` directly.  Every strategy also
implements ``plan(relation)`` (:mod:`repro.reduction.plan`), exposing its
block/window structure as a :class:`~repro.reduction.plan.CandidatePlan`
of schedulable partitions — the input of the detector's block-aware
scheduler and cache pre-warming.
"""

from repro.reduction.alternatives import AlternativeSorting, MatchingMatrix
from repro.reduction.derived_keys import (
    DerivedKey,
    PhoneticBlocking,
    derived_most_probable_key,
    derived_xtuple_key_distribution,
    phonetic_key,
    prefix_transform,
    soundex_transform,
)
from repro.reduction.blocking import (
    AlternativeKeyBlocking,
    CertainKeyBlocking,
    MultiPassBlocking,
    pairs_from_blocks,
    refine_key,
    split_block_by_refined_key,
)
from repro.reduction.keys import (
    KeyFunction,
    SubstringKey,
    alternative_key_distribution,
    expand_pattern_keys,
    keys_of_world_assignment,
    most_probable_key,
    xtuple_key_distribution,
)
from repro.reduction.multipass import MultiPassSNM, WorldSelection
from repro.reduction.plan import (
    DEFAULT_PARTITION_PAIRS,
    CandidatePartition,
    CandidatePlan,
    PlanBuilder,
    PlanningReducer,
    SplittableReducer,
    add_window_spans,
    band_partition,
    delta_plan,
    members_of_pairs,
    ordered_pair,
    partition_fingerprint,
    partition_vocabulary,
    plan_candidates,
    plan_fingerprints,
    plan_from_blocks,
    plan_from_window,
    split_partition_by_groups,
    tuple_fingerprint,
)
from repro.reduction.snm import (
    SortedNeighborhood,
    sort_by_key,
    window_pairs,
)
from repro.reduction.uncertain_clustering import (
    UncertainKeyClusteringBlocking,
    expected_key_distance,
    normalized_key_distance,
)
from repro.reduction.uncertain_keys import UncertainKeySNM
from repro.reduction.world_selection import (
    average_pairwise_overlap,
    select_diverse_worlds,
    select_probable_worlds,
)

__all__ = [
    "AlternativeKeyBlocking",
    "AlternativeSorting",
    "CandidatePartition",
    "CandidatePlan",
    "CertainKeyBlocking",
    "DEFAULT_PARTITION_PAIRS",
    "DerivedKey",
    "KeyFunction",
    "PhoneticBlocking",
    "MatchingMatrix",
    "MultiPassBlocking",
    "MultiPassSNM",
    "PlanBuilder",
    "PlanningReducer",
    "SortedNeighborhood",
    "SplittableReducer",
    "SubstringKey",
    "UncertainKeyClusteringBlocking",
    "UncertainKeySNM",
    "WorldSelection",
    "add_window_spans",
    "band_partition",
    "delta_plan",
    "alternative_key_distribution",
    "average_pairwise_overlap",
    "derived_most_probable_key",
    "derived_xtuple_key_distribution",
    "expand_pattern_keys",
    "expected_key_distance",
    "keys_of_world_assignment",
    "members_of_pairs",
    "most_probable_key",
    "normalized_key_distance",
    "ordered_pair",
    "partition_fingerprint",
    "plan_fingerprints",
    "pairs_from_blocks",
    "partition_vocabulary",
    "phonetic_key",
    "plan_candidates",
    "plan_from_blocks",
    "plan_from_window",
    "prefix_transform",
    "refine_key",
    "tuple_fingerprint",
    "split_block_by_refined_key",
    "select_diverse_worlds",
    "select_probable_worlds",
    "sort_by_key",
    "soundex_transform",
    "split_partition_by_groups",
    "window_pairs",
    "xtuple_key_distribution",
]
