"""Execution planning for the reduction→matching seam.

The Section-V reducers know their block/window structure, but the
legacy ``pairs(relation)`` protocol flattens it into one anonymous pair
stream — so batched detection could only stripe chunks blindly across
workers, duplicating similarity-cache misses in every fork.  This module
makes the structure explicit:

* :class:`CandidatePartition` — one schedulable unit of candidate pairs
  (a block, a window span, one multi-pass world) together with the
  member tuple ids it touches;
* :class:`CandidatePlan` — the ordered, duplicate-free sequence of
  partitions a reducer produces for one relation;
* :class:`PlanBuilder` — the shared constructor enforcing the pipeline
  invariants (pairs normalized ``left <= right``, self-pairs dropped,
  global first-occurrence dedup), so a plan's concatenated pair sequence
  is *exactly* the sequence the legacy ``detect`` loop would have
  compared — planned execution stays bitwise-equivalent to the serial
  seed pipeline;
* :func:`plan_candidates` — planner entry point with a single-partition
  fallback for legacy ``pairs()``-only reducers;
* :func:`partition_vocabulary` — the observed per-attribute domain
  elements of one partition, the input of similarity-cache pre-warming;
* :func:`split_partition_by_groups` / :func:`band_partition` — exact
  subdivisions of one partition (by member grouping, or contiguous
  banding) for the skew-aware scheduler; reducers with sub-key
  structure expose it through the :class:`SplittableReducer` hook;
* :func:`planning_view` / :func:`store_statistics` — the storage
  pushdown seam: key-extraction passes scan only the keyed attributes'
  columns of stores that support projection (the columnar backend),
  and spill-time statistics (zone maps, key histograms) reach the
  planner without touching tuple data;
* :func:`tuple_fingerprint` / :func:`partition_fingerprint` /
  :func:`plan_fingerprints` / :func:`delta_plan` — content fingerprints
  over a partition's decision-relevant state (pairs + member tuple
  contents) and the delta-plan entry point, the basis of incremental
  re-detection: a refresh executes only partitions whose fingerprint
  changed and provably reuses retained decisions for the rest.

Partitions and plans additionally carry optional *source tags*
(:attr:`CandidatePartition.sources`), set when a plan is built over a
multi-source view — the signal consolidation runs prune single-source
partitions by.

Every reducer in :mod:`repro.reduction` implements ``plan(relation)``
on top of :func:`plan_from_blocks` / :func:`plan_from_window`; the
scheduler in :mod:`repro.matching.pipeline` assigns whole partitions to
workers so cache working sets stay disjoint.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Iterable, Iterator, MutableMapping, Sequence
from dataclasses import dataclass, replace
from typing import Any, Collection, Mapping, Protocol, runtime_checkable

from repro.pdb.storage.base import fetch_tuples
from repro.pdb.storage.stats import StoreStatistics
from repro.pdb.values import NULL
from repro.similarity.kernels import pair_key

#: Pair-count target per partition for window-family planners, chosen so
#: partitions stay large enough to amortize worker dispatch and small
#: enough that a plan has work for every worker.
DEFAULT_PARTITION_PAIRS = 2048

#: Members fetched per batch during vocabulary extraction, so planning
#: passes never pin more than this many decoded tuples of an
#: out-of-core store at once — even for partitions spanning the whole
#: relation (full comparison, legacy single-partition fallbacks).
VOCABULARY_BATCH_MEMBERS = 512


def ordered_pair(left: str, right: str) -> tuple[str, str]:
    """The pipeline-wide pair normalization: ``left <= right``.

    Single source of truth — the plan-equals-legacy-stream invariant
    holds only while every layer (reducers, builder, detector) orders
    pairs identically.
    """
    return (left, right) if left <= right else (right, left)


@dataclass(frozen=True)
class CandidatePartition:
    """One schedulable unit of candidate pairs.

    Attributes
    ----------
    label:
        Human-readable origin of the partition (block key, window span,
        world index) for logs and streamed result slices.
    pairs:
        The partition's candidate pairs, normalized ``left <= right``,
        in emission order, globally unique across the whole plan.
    members:
        Tuple ids appearing in :attr:`pairs`, in first-occurrence order
        (the deterministic base of vocabulary extraction).
    sources:
        Source tags of the relations the members come from, in
        first-occurrence order — set by multi-source planning
        (:func:`repro.matching.executor.multisource.plan_sources`);
        ``None`` for single-relation plans.  A single-source tag on a
        partition of a multi-source plan proves the partition can
        contribute no cross-source pair — the pruning signal of
        consolidation-only runs.
    """

    label: str
    pairs: tuple[tuple[str, str], ...]
    members: tuple[str, ...]
    sources: tuple[str, ...] | None = None

    def __len__(self) -> int:
        return len(self.pairs)

    def __repr__(self) -> str:
        tagged = (
            f", sources={'×'.join(self.sources)}" if self.sources else ""
        )
        return (
            f"CandidatePartition({self.label!r}, pairs={len(self.pairs)}, "
            f"members={len(self.members)}{tagged})"
        )


@dataclass(frozen=True)
class CandidatePlan:
    """A reducer's partitioned candidate search space for one relation.

    The concatenation of the partitions' pair sequences is duplicate-free
    and equals the legacy ``pairs()`` emission order after the pipeline's
    normalization — scheduling whole partitions therefore reorders
    *work*, never *results*.
    """

    partitions: tuple[CandidatePartition, ...]
    relation_size: int
    source: str
    #: Source tags of a multi-source plan (union order); ``None`` for
    #: single-relation plans.
    source_names: tuple[str, ...] | None = None

    @property
    def total_pairs(self) -> int:
        """Candidate pairs across all partitions."""
        return sum(len(p.pairs) for p in self.partitions)

    def pairs(self) -> Iterator[tuple[str, str]]:
        """All candidate pairs in plan order."""
        for partition in self.partitions:
            yield from partition.pairs

    def __iter__(self) -> Iterator[CandidatePartition]:
        return iter(self.partitions)

    def __len__(self) -> int:
        return len(self.partitions)

    def __repr__(self) -> str:
        return (
            f"CandidatePlan({self.source}, partitions={len(self.partitions)}, "
            f"pairs={self.total_pairs})"
        )


@runtime_checkable
class PlanningReducer(Protocol):
    """Reducers that expose their block/window structure as a plan."""

    def plan(self, relation) -> CandidatePlan:  # pragma: no cover
        ...


@runtime_checkable
class SplittableReducer(Protocol):
    """Reducers that can subdivide one of their partitions by sub-key.

    The skew-aware scheduler calls ``split_partition`` on partitions
    exceeding its cost budget; the reducer may return sub-partitions
    whose concatenated pair *sets* cover the partition's pairs exactly
    once (order may differ — the scheduler restores emission order when
    reassembling), grouped so each sub-partition touches a small,
    coherent member subset (e.g. a refined block key).  Returning
    ``None`` (or raising nothing but producing one group) falls back to
    the scheduler's contiguous row-banding.
    """

    def split_partition(
        self, relation, partition: "CandidatePartition", *, max_pairs: int
    ) -> "list[CandidatePartition] | None":  # pragma: no cover
        ...


# ----------------------------------------------------------------------
# Store statistics and projection — the storage→planner pushdown seam
# ----------------------------------------------------------------------


def store_statistics(relation) -> StoreStatistics | None:
    """Precomputed statistics of *relation*, or ``None``.

    Stores that fold zone maps and key histograms at spill time (the
    columnar backend) answer from their manifest; everything else —
    in-memory relations, row stores — returns ``None``, and callers
    that *need* statistics fall back to
    :func:`repro.pdb.storage.stats.relation_statistics` (one streaming
    pass) or skip the statistics-driven optimization.
    """
    statistics = getattr(relation, "statistics", None)
    if not callable(statistics):
        return None
    computed = statistics()
    return computed if isinstance(computed, StoreStatistics) else None


def planning_view(relation, attributes: Iterable[str]):
    """The cheapest scan of *relation* that covers *attributes*.

    Key-extraction passes read nothing but the key attributes and the
    alternative probabilities, so a store that can serve an attribute
    subset without decoding whole tuples (``project`` — the columnar
    backend, and composites forwarding it) hands back a projection;
    anything else is returned unchanged.  Either way iteration order,
    tuple ids and the selected values are identical, so plans built
    over the view are bitwise-identical to plans built over the
    relation.
    """
    project = getattr(relation, "project", None)
    if not callable(project):
        return relation
    try:
        return project(tuple(attributes))
    except (KeyError, TypeError):
        # Attributes outside the store's schema (or a non-conforming
        # project signature): scan the full relation instead.
        return relation


class PlanBuilder:
    """Accumulates partitions under the pipeline's pair invariants.

    One builder per plan: the dedup set spans partitions, so a pair
    reachable through several blocks/worlds lands in the first partition
    that emits it — exactly where the legacy flattened stream would have
    compared it.
    """

    def __init__(self) -> None:
        self._seen: set[tuple[str, str]] = set()
        self._partitions: list[CandidatePartition] = []

    def add(
        self, label: str, pairs: Iterable[tuple[str, str]]
    ) -> int:
        """Add one partition; returns how many unique pairs it kept.

        Self-pairs and pairs already claimed by an earlier partition are
        dropped; empty partitions are not recorded.
        """
        seen = self._seen
        unique: list[tuple[str, str]] = []
        members: dict[str, None] = {}
        for left, right in pairs:
            if left == right:
                continue
            pair = ordered_pair(left, right)
            if pair in seen:
                continue
            seen.add(pair)
            unique.append(pair)
            members[pair[0]] = None
            members[pair[1]] = None
        if unique:
            self._partitions.append(
                CandidatePartition(
                    label=str(label),
                    pairs=tuple(unique),
                    members=tuple(members),
                )
            )
        return len(unique)

    def build(self, *, relation_size: int, source: str) -> CandidatePlan:
        """Finalize the plan (the builder can be discarded afterwards)."""
        return CandidatePlan(
            partitions=tuple(self._partitions),
            relation_size=relation_size,
            source=source,
        )


def within_block_pairs(
    members: Sequence[str],
) -> Iterator[tuple[str, str]]:
    """All unordered pairs inside one block, in enumeration order."""
    for i, left in enumerate(members):
        for right in members[i + 1 :]:
            yield left, right


def window_span_pairs(
    ordered_ids: Sequence[str], window: int, start: int, end: int
) -> Iterator[tuple[str, str]]:
    """Sliding-window pairs whose *left* index lies in ``[start, end)``.

    Mirrors :func:`repro.reduction.snm.window_pairs` cell for cell; the
    caller's :class:`PlanBuilder` supplies the self-pair skip and the
    matching-matrix dedup.
    """
    length = len(ordered_ids)
    for index in range(start, end):
        left = ordered_ids[index]
        for offset in range(1, window):
            follower = index + offset
            if follower >= length:
                break
            yield left, ordered_ids[follower]


def plan_from_blocks(
    blocks: Mapping[str, Sequence[str]],
    *,
    relation_size: int,
    source: str,
    prefix: str = "block",
) -> CandidatePlan:
    """One partition per block, in block-insertion order."""
    builder = PlanBuilder()
    for key, members in blocks.items():
        builder.add(f"{prefix}:{key}", within_block_pairs(members))
    return builder.build(relation_size=relation_size, source=source)


def add_window_spans(
    builder: PlanBuilder,
    ordered_ids: Sequence[str],
    window: int,
    *,
    target_pairs: int = DEFAULT_PARTITION_PAIRS,
    label: str = "rows",
) -> None:
    """Append one sliding-window pass to *builder* as contiguous row spans.

    Row spans keep key-adjacent tuples — whose values the window will
    compare against each other — in the same partition, so each worker's
    cache working set covers one neighborhood of the sort order.
    Multi-pass strategies call this once per world on a shared builder.
    """
    per_row = max(1, window - 1)
    rows_per_partition = max(1, target_pairs // per_row)
    length = len(ordered_ids)
    start = 0
    while start < length:
        end = min(length, start + rows_per_partition)
        builder.add(
            f"{label}[{start}:{end}]",
            window_span_pairs(ordered_ids, window, start, end),
        )
        start = end


def plan_from_window(
    ordered_ids: Sequence[str],
    window: int,
    *,
    relation_size: int,
    source: str,
    target_pairs: int = DEFAULT_PARTITION_PAIRS,
    label: str = "rows",
) -> CandidatePlan:
    """A finished single-pass plan of window spans (see :func:`add_window_spans`)."""
    builder = PlanBuilder()
    add_window_spans(
        builder,
        ordered_ids,
        window,
        target_pairs=target_pairs,
        label=label,
    )
    return builder.build(relation_size=relation_size, source=source)


def plan_candidates(reducer, relation) -> CandidatePlan:
    """The execution plan of any reducer.

    Planning reducers expose their own structure through
    ``plan(relation)``; legacy ``pairs()``-only generators fall back to
    a single partition holding the whole (normalized, deduplicated)
    stream, which schedules exactly like the pre-planner pipeline.
    """
    plan_method = getattr(reducer, "plan", None)
    if callable(plan_method):
        plan = plan_method(relation)
        if not isinstance(plan, CandidatePlan):
            raise TypeError(
                f"{reducer!r}.plan() returned {type(plan).__name__}, "
                "expected CandidatePlan"
            )
        return plan
    builder = PlanBuilder()
    builder.add("all", reducer.pairs(relation))
    return builder.build(relation_size=len(relation), source=repr(reducer))


def members_of_pairs(
    pairs: Sequence[tuple[str, str]],
) -> tuple[str, ...]:
    """Tuple ids of a pair sequence, in first-occurrence order."""
    members: dict[str, None] = {}
    for left, right in pairs:
        members[left] = None
        members[right] = None
    return tuple(members)


def split_partition_by_groups(
    partition: CandidatePartition,
    group_of: Mapping[str, str],
) -> list[CandidatePartition]:
    """Subdivide a partition by a member → group assignment.

    Every pair lands in exactly one sub-partition — the one keyed by
    its (unordered) endpoint group pair — so the sub-partitions' pair
    sets cover the partition exactly once, whatever the grouping.  The
    grouping only steers *locality*: a good assignment (refined block
    key, sub-range of the sort order) gives each sub-partition a small
    member working set, which is what lets a worker decide it with a
    cold cache and no duplicated similarity work.

    Pairs keep their relative emission order inside each sub-partition;
    sub-partitions are ordered by first pair occurrence, so
    concatenating them is a stable grouping of the original sequence.
    Members inherit source tags per sub-partition.
    """
    buckets: dict[tuple[str, str], list[tuple[str, str]]] = {}
    for pair in partition.pairs:
        left_group = group_of[pair[0]]
        right_group = group_of[pair[1]]
        key = (
            (left_group, right_group)
            if left_group <= right_group
            else (right_group, left_group)
        )
        buckets.setdefault(key, []).append(pair)
    if len(buckets) <= 1:
        return [partition]
    subdivided: list[CandidatePartition] = []
    for (one, other), pairs in buckets.items():
        suffix = one if one == other else f"{one}×{other}"
        subdivided.append(
            CandidatePartition(
                label=f"{partition.label}/{suffix}",
                pairs=tuple(pairs),
                members=members_of_pairs(pairs),
                sources=partition.sources,
            )
        )
    return subdivided


def band_partition(
    partition: CandidatePartition, max_pairs: int
) -> list[CandidatePartition]:
    """Fallback subdivision: contiguous ≤ ``max_pairs`` pair bands.

    Works for *opaque* partitions (no sub-key structure known): slicing
    the emission order preserves pair order trivially, so bands cover
    the partition exactly once and concatenate back to it.
    """
    if max_pairs < 1:
        raise ValueError("max_pairs must be >= 1")
    pairs = partition.pairs
    if len(pairs) <= max_pairs:
        return [partition]
    bands: list[CandidatePartition] = []
    for start in range(0, len(pairs), max_pairs):
        piece = pairs[start : start + max_pairs]
        bands.append(
            CandidatePartition(
                label=f"{partition.label}/band[{start}:{start + len(piece)}]",
                pairs=piece,
                members=members_of_pairs(piece),
                sources=partition.sources,
            )
        )
    return bands


def partition_vocabulary(
    relation, partition: CandidatePartition
) -> dict[str, tuple[Any, ...]]:
    """Observed domain elements per attribute of one partition.

    Collects, in deterministic first-occurrence order, every outcome of
    every member tuple's alternatives — the operand universe the
    partition's attribute matching can draw from.  ⊥ is excluded (the
    comparator layer resolves non-existence before the domain-element
    cache); pattern values are kept, because an ``expand``-policy
    comparator queries the cache with their lexicon expansions — the
    warming layer maps them accordingly (see
    :meth:`repro.similarity.uncertain.UncertainValueComparator.cacheable_vocabulary`).
    """
    vocabulary: dict[str, dict[Any, None]] = {}
    members = partition.members
    for start in range(0, len(members), VOCABULARY_BATCH_MEMBERS):
        batch = members[start : start + VOCABULARY_BATCH_MEMBERS]
        working_set = fetch_tuples(relation, batch)
        for tuple_id in batch:
            xtuple = working_set[tuple_id]
            for alternative in xtuple.alternatives:
                for attribute in alternative.attributes:
                    observed = vocabulary.setdefault(attribute, {})
                    for outcome in alternative.value(attribute).support:
                        if outcome is NULL:
                            continue
                        observed.setdefault(outcome, None)
    return {
        attribute: tuple(values)
        for attribute, values in vocabulary.items()
    }


def partition_value_pairs(
    relation,
    partition: CandidatePartition,
    *,
    limit: int | None = None,
) -> tuple[dict[str, tuple[tuple[Any, Any], ...]], bool]:
    """Attribute-value combinations the partition's pairs can compare.

    The pair-aware refinement of :func:`partition_vocabulary`: instead
    of the full pairwise square of each attribute's vocabulary, walks
    the partition's *candidate tuple pairs* and collects, per
    attribute, only the cross products of the two tuples' observed
    outcomes — exactly the domain-element comparisons attribute
    matching can issue for this partition.  Window-family plans whose
    pairs span a sorted run of length ``|span|`` over-warm by roughly
    ``|span| / (2·(w−1))`` under the square; the pair-aware set is what
    the vectorized prewarm scorer encodes and scores in bulk.

    Deduplicated per attribute under the cache's unordered-pair key
    (first occurrence wins, so collection is deterministic in plan
    order); ⊥ and reflexive same-type-equal combinations are excluded
    — the comparator layer answers both without touching the cache.
    Pattern values are kept for
    :meth:`repro.similarity.uncertain.UncertainValueComparator.cacheable_pairs`
    to expand or drop by policy.

    Returns ``({attribute: value pairs}, truncated)``; with a *limit*,
    collection stops once that many combinations are gathered and
    *truncated* reports whether the partition may hold more — callers
    warming under a budget pass ``limit=budget + 1`` so truncation
    implies the budget was insufficient.
    """
    collected: dict[str, dict[tuple[Any, Any], tuple[Any, Any]]] = {}
    outcomes_by_member: dict[str, dict[str, tuple[Any, ...]]] = {}
    total = 0
    truncated = False
    pairs = partition.pairs
    for start in range(0, len(pairs), VOCABULARY_BATCH_MEMBERS):
        batch = pairs[start : start + VOCABULARY_BATCH_MEMBERS]
        needed_members = [
            member
            for pair in batch
            for member in pair
            if member not in outcomes_by_member
        ]
        if needed_members:
            working_set = fetch_tuples(
                relation, list(dict.fromkeys(needed_members))
            )
            for tuple_id, xtuple in working_set.items():
                observed: dict[str, dict[Any, None]] = {}
                for alternative in xtuple.alternatives:
                    for attribute in alternative.attributes:
                        outcomes = observed.setdefault(attribute, {})
                        for outcome in alternative.value(attribute).support:
                            if outcome is NULL:
                                continue
                            outcomes.setdefault(outcome, None)
                outcomes_by_member[tuple_id] = {
                    attribute: tuple(outcomes)
                    for attribute, outcomes in observed.items()
                }
        for left_id, right_id in batch:
            left_outcomes = outcomes_by_member[left_id]
            right_outcomes = outcomes_by_member[right_id]
            for attribute, left_values in left_outcomes.items():
                right_values = right_outcomes.get(attribute)
                if not right_values:
                    continue
                seen = collected.setdefault(attribute, {})
                for left_value in left_values:
                    for right_value in right_values:
                        if left_value is right_value or (
                            type(left_value) is type(right_value)
                            and left_value == right_value
                        ):
                            continue
                        key = pair_key(left_value, right_value)
                        if key in seen:
                            continue
                        if limit is not None and total >= limit:
                            truncated = True
                            break
                        seen[key] = (left_value, right_value)
                        total += 1
                    if truncated:
                        break
                if truncated:
                    break
            if truncated:
                break
        if truncated:
            break
    return (
        {
            attribute: tuple(pairs.values())
            for attribute, pairs in collected.items()
        },
        truncated,
    )


# ----------------------------------------------------------------------
# Partition fingerprints (incremental detection support)
# ----------------------------------------------------------------------

#: Digest size of the content fingerprints below.  16 bytes keeps the
#: per-partition index small while collisions stay out of reach for any
#: realistic plan (2^64 partitions to a birthday collision).
_FINGERPRINT_BYTES = 16


def tuple_fingerprint(xtuple) -> str:
    """Content fingerprint of one x-tuple.

    Hashes the tuple's *exact* serialized form — id, alternatives in
    order, per-attribute values under the order-preserving segment
    codec — so two tuples fingerprint equal iff a decision procedure
    could not tell them apart.  The incremental layer uses this to
    detect modified tuples without diffing values attribute by
    attribute.
    """
    from repro.pdb.io import encode_xtuple

    document = json.dumps(
        encode_xtuple(xtuple, exact=True),
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.blake2b(
        document.encode("utf-8"), digest_size=_FINGERPRINT_BYTES
    ).hexdigest()


def partition_fingerprint(
    partition: CandidatePartition,
    tuple_fingerprints: Mapping[str, str],
) -> str:
    """Fingerprint of one partition's *decision-relevant* state.

    Covers the partition's pair sequence and every member tuple's
    content fingerprint — exactly the inputs a partition's decisions
    are a pure function of (each decision depends only on its two
    x-tuples and the configured procedure).  Labels and source tags are
    deliberately excluded: a relabeled or re-tagged partition with the
    same pairs over the same tuple contents decides identically, so its
    retained decisions stay reusable.

    Two partitions of one plan can never fingerprint equal (the builder
    dedups pairs globally, so their pair sequences differ); across plan
    generations, an equal fingerprint proves the retained decisions for
    the old partition are bitwise-valid for the new one.
    """
    digest = hashlib.blake2b(digest_size=_FINGERPRINT_BYTES)
    for left, right in partition.pairs:
        digest.update(left.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(right.encode("utf-8"))
        digest.update(b"\x01")
    digest.update(b"\x02")
    for member in partition.members:
        digest.update(tuple_fingerprints[member].encode("ascii"))
    return digest.hexdigest()


def plan_fingerprints(
    relation,
    plan: CandidatePlan,
    *,
    tuple_fingerprints: MutableMapping[str, str] | None = None,
) -> tuple[str, ...]:
    """Per-partition fingerprints of a plan, in plan order.

    Member tuples are fetched in :data:`VOCABULARY_BATCH_MEMBERS`-sized
    working sets (out-of-core stores never decode more than a batch at
    once).  *tuple_fingerprints* is an optional cross-call memo: ids
    already present are trusted without fetching the tuple — a session
    that invalidates the memo on upsert/delete pays one hash per
    *changed* tuple per refresh, not one per tuple.
    """
    memo: MutableMapping[str, str] = (
        tuple_fingerprints if tuple_fingerprints is not None else {}
    )
    fingerprints: list[str] = []
    for partition in plan.partitions:
        missing = [m for m in partition.members if m not in memo]
        for start in range(0, len(missing), VOCABULARY_BATCH_MEMBERS):
            batch = missing[start : start + VOCABULARY_BATCH_MEMBERS]
            working_set = fetch_tuples(relation, batch)
            for tuple_id in batch:
                memo[tuple_id] = tuple_fingerprint(working_set[tuple_id])
        fingerprints.append(partition_fingerprint(partition, memo))
    return tuple(fingerprints)


def delta_plan(
    plan: CandidatePlan,
    fingerprints: Sequence[str],
    retained: Collection[str],
) -> CandidatePlan:
    """The sub-plan an incremental refresh must actually execute.

    Keeps, in plan order, exactly the partitions whose fingerprint is
    *not* in *retained* (the fingerprints a session holds reusable
    decisions for) — new blocks, blocks whose membership or member
    contents changed, window spans shifted by an insertion.  Partitions
    with a retained fingerprint are provably untouched, so the delta
    plan never contains one; their decisions merge back unexecuted.
    """
    if len(fingerprints) != len(plan.partitions):
        raise ValueError(
            f"{len(fingerprints)} fingerprints for "
            f"{len(plan.partitions)} partitions"
        )
    stale = tuple(
        partition
        for partition, fingerprint in zip(plan.partitions, fingerprints)
        if fingerprint not in retained
    )
    if len(stale) == len(plan.partitions):
        return plan
    return replace(
        plan,
        partitions=stale,
        source=f"{plan.source} [delta]",
    )
