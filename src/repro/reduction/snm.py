"""The classic Sorted-Neighborhood Method over certain keys ([19], [22]).

Given one certain key per tuple, SNM sorts the tuples by key and compares
only tuples within a sliding window of fixed size.  This module provides
the windowing core shared by every probabilistic adaptation in
Section V-A:

* :func:`window_pairs` — pairs emitted by a sliding window over an
  ordered id sequence (possibly with repeated ids, as produced by the
  sorting-alternatives strategy);
* :class:`SortedNeighborhood` — the full classic method as a
  :class:`~repro.matching.pipeline.PairGenerator`, parameterized by how
  the certain key per tuple is obtained.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Sequence

from repro.pdb.relations import XRelation
from repro.pdb.storage.base import fetch_tuples
from repro.pdb.xtuples import XTuple
from repro.reduction.keys import SubstringKey, most_probable_key
from repro.reduction.plan import (
    CandidatePartition,
    CandidatePlan,
    ordered_pair as _ordered,
    plan_from_window,
    planning_view,
    split_partition_by_groups,
)

#: Members fetched per batch while recomputing keys for a sub-key
#: split, bounding decoded residency on out-of-core stores.
SPLIT_FETCH_BATCH = 512


def window_pairs(
    ordered_ids: Sequence[str],
    window: int,
    *,
    skip_duplicate_pairs: bool = True,
) -> Iterator[tuple[str, str]]:
    """Pairs produced by sliding a window of size *window* over the order.

    Every entry is compared with the ``window - 1`` entries following it.
    Self-pairs (the same tuple id appearing twice, possible when sorting
    alternatives) are never emitted; with *skip_duplicate_pairs* each
    unordered pair is emitted at most once — the matching matrix of
    Figure 12.

    Raises
    ------
    ValueError
        For window sizes below 2 (no comparisons would happen).
    """
    if window < 2:
        raise ValueError(f"window must be >= 2, got {window}")
    seen: set[tuple[str, str]] = set()
    for index, left in enumerate(ordered_ids):
        for offset in range(1, window):
            if index + offset >= len(ordered_ids):
                break
            right = ordered_ids[index + offset]
            if left == right:
                continue
            pair = _ordered(left, right)
            if skip_duplicate_pairs:
                if pair in seen:
                    continue
                seen.add(pair)
            yield pair


def split_window_partition_by_key(
    relation,
    partition: CandidatePartition,
    key: SubstringKey,
    member_key: Callable[[XTuple, SubstringKey], str] = most_probable_key,
    *,
    max_pairs: int,
    batch_size: int = SPLIT_FETCH_BATCH,
) -> list[CandidatePartition] | None:
    """Subdivide a window-span partition by sort-key range.

    The SNM-family sub-key split hook: members are re-keyed with the
    reducer's sort key, ordered by it, and cut into contiguous key
    buckets sized so a bucket's expected pair share fits *max_pairs*
    (per-member pair density is taken from the partition itself, so
    windows and entry repetition need no special casing).  Pairs then
    regroup by their endpoint buckets via
    :func:`~repro.reduction.plan.split_partition_by_groups` — an exact
    cover for any grouping, so which pairs are compared (and their
    decisions) never changes; the bucketing only gives each stolen unit
    a small, key-contiguous member range.  Window pairs straddling a
    cut land in the ``bucket×bucket`` boundary units.

    Returns ``None`` — letting the scheduler band contiguously — when
    the partition is small enough, a key is uncomputable (pattern
    prefix shorter than a key part), or everything shares one bucket.
    """
    pairs = len(partition.pairs)
    members = partition.members
    if pairs <= max_pairs or len(members) < 2:
        return None
    keys: dict[str, str] = {}
    try:
        for start in range(0, len(members), batch_size):
            batch = members[start : start + batch_size]
            working_set = fetch_tuples(relation, batch)
            for tuple_id in batch:
                keys[tuple_id] = member_key(working_set[tuple_id], key)
    except ValueError:
        return None
    # Stable on member order, so equal keys keep their window order.
    ordered = sorted(members, key=lambda tuple_id: keys[tuple_id])
    density = max(1.0, pairs / len(members))
    capacity = max(1, int(max_pairs // density))
    bucket_count = -(-len(ordered) // capacity)
    if bucket_count < 2:
        return None
    width = len(str(bucket_count - 1))
    group_of = {
        tuple_id: f"k{index // capacity:0{width}d}"
        for index, tuple_id in enumerate(ordered)
    }
    subdivided = split_partition_by_groups(partition, group_of)
    return subdivided if len(subdivided) > 1 else None


def sort_by_key(
    keyed_ids: Iterable[tuple[str, str]],
) -> list[str]:
    """Order tuple ids by their key values (stable on input order)."""
    return [tuple_id for _, tuple_id in sorted(
        keyed_ids, key=lambda pair: pair[0]
    )]


class SortedNeighborhood:
    """Classic SNM as a pair generator over an x-relation.

    Parameters
    ----------
    key:
        The sorting-key specification.
    window:
        Window size (≥ 2).
    key_strategy:
        How to obtain one *certain* key per x-tuple.  Defaults to the
        most probable key value (the metadata-based deciding strategy of
        Section V-A.2); pass any callable ``(XTuple, SubstringKey) → str``
        to plug in a different conflict-resolution strategy.
    """

    def __init__(
        self,
        key: SubstringKey,
        window: int = 3,
        *,
        key_strategy: Callable[[XTuple, SubstringKey], str] = most_probable_key,
    ) -> None:
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        self._key = key
        self._window = window
        self._key_strategy = key_strategy

    @property
    def window(self) -> int:
        """The window size."""
        return self._window

    def keyed_ids(self, relation: XRelation) -> list[tuple[str, str]]:
        """``(key value, tuple id)`` pairs for the whole relation.

        Runs over :func:`~repro.reduction.plan.planning_view`, so
        columnar stores serve the pass from the keyed columns alone.
        """
        return [
            (self._key_strategy(xtuple, self._key), xtuple.tuple_id)
            for xtuple in planning_view(relation, self._key.attributes)
        ]

    def sorted_ids(self, relation: XRelation) -> list[str]:
        """Tuple ids in key order (the sorted relation of Figure 10)."""
        return sort_by_key(self.keyed_ids(relation))

    def pairs(self, relation: XRelation) -> Iterator[tuple[str, str]]:
        """Candidate pairs of the sliding window."""
        return window_pairs(self.sorted_ids(relation), self._window)

    def plan(self, relation: XRelation) -> CandidatePlan:
        """Contiguous spans of the sort order as partitions.

        A span's tuples are key-neighbors, so its candidate pairs share
        the cache working set; spans overlap only through the window
        stragglers at each boundary.

        >>> from repro.pdb.relations import XRelation
        >>> from repro.pdb.xtuples import TupleAlternative, XTuple
        >>> from repro.reduction.keys import SubstringKey
        >>> relation = XRelation("R", ("name",), [
        ...     XTuple(t, (TupleAlternative({"name": n}, 1.0),))
        ...     for t, n in [("t1", "anna"), ("t2", "bob"), ("t3", "anne")]])
        >>> reducer = SortedNeighborhood(SubstringKey([("name", 3)]), window=2)
        >>> plan = reducer.plan(relation)
        >>> [p.label for p in plan]  # one span: 3 rows fit the target
        ['rows[0:3]']
        >>> list(plan.pairs())  # key order ann, ann, bob; window 2
        [('t1', 't3'), ('t2', 't3')]
        """
        return plan_from_window(
            self.sorted_ids(relation),
            self._window,
            relation_size=len(relation),
            source=repr(self),
        )

    def split_partition(
        self,
        relation,
        partition: CandidatePartition,
        *,
        max_pairs: int,
    ) -> list[CandidatePartition] | None:
        """Skew hook: subdivide one oversized span by sort-key range.

        Members regroup into contiguous key buckets (see
        :func:`split_window_partition_by_key`); which pairs are
        compared — and their decisions — never changes.
        """
        return split_window_partition_by_key(
            relation,
            partition,
            self._key,
            self._key_strategy,
            max_pairs=max_pairs,
        )

    def __repr__(self) -> str:
        return (
            f"SortedNeighborhood(key={self._key!r}, window={self._window})"
        )
