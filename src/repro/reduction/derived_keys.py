"""Derived keys: transformation-based sorting/blocking keys.

:class:`SubstringKey` covers the paper's prefix keys; real deployments
often key on *derived* forms — phonetic codes survive misspellings,
normalized strings survive case/whitespace noise.  :class:`DerivedKey`
generalizes the key-part concept to ``(attribute, transform)`` pairs
whose string results are concatenated; :func:`phonetic_key` provides the
standard Soundex-on-name construction.

Derived keys compose with every reduction strategy in this package: the
probabilistic machinery (key distributions, conditioning, ranking) only
relies on the per-outcome key pieces, which this module supplies through
the same interface as :class:`SubstringKey`.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from typing import Any

from repro.pdb.values import NULL, PatternValue
from repro.similarity.phonetic import soundex

#: A key-part transform: concrete outcome → key piece.
PartTransform = Callable[[Any], str]


def prefix_transform(length: int) -> PartTransform:
    """The SubstringKey behaviour as a transform: ``str(value)[:length]``."""
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")

    def _prefix(value: Any) -> str:
        return str(value)[:length]

    return _prefix


def soundex_transform(value: Any) -> str:
    """Soundex code of the value (``0000`` for non-alphabetic input)."""
    return soundex(str(value))


class DerivedKey:
    """Concatenation of per-attribute transform results.

    Parameters
    ----------
    parts:
        ``(attribute, transform)`` pairs.  Each transform maps one
        concrete outcome to its key piece; ⊥ always contributes the
        empty string (mirroring :class:`SubstringKey`), and pattern
        values contribute the transform of their fixed prefix when that
        is well-defined, else raise.
    """

    def __init__(
        self, parts: Sequence[tuple[str, PartTransform]]
    ) -> None:
        if not parts:
            raise ValueError("a key needs at least one part")
        self._parts = tuple((str(a), t) for a, t in parts)

    @property
    def parts(self) -> tuple[tuple[str, PartTransform], ...]:
        """The ``(attribute, transform)`` specification.

        Exposed with the same shape contract as
        :attr:`SubstringKey.parts` consumers rely on (attribute first).
        """
        return self._parts

    @property
    def attributes(self) -> tuple[str, ...]:
        """Attributes the key reads."""
        return tuple(attribute for attribute, _ in self._parts)

    def _piece(self, value: Any, transform: PartTransform) -> str:
        if value is NULL:
            return ""
        if isinstance(value, PatternValue):
            return transform(value.prefix)
        return transform(value)

    def for_assignment(self, assignment: Mapping[str, Any]) -> str:
        """Key of one concrete attribute assignment."""
        return "".join(
            self._piece(assignment[attribute], transform)
            for attribute, transform in self._parts
        )

    def __repr__(self) -> str:
        attrs = ", ".join(attribute for attribute, _ in self._parts)
        return f"DerivedKey({attrs})"


def derived_alternative_key_distribution(
    alternative, key: DerivedKey
) -> list[tuple[str, float]]:
    """Key distribution of one alternative under a derived key.

    The derived-key analogue of
    :func:`repro.reduction.keys.alternative_key_distribution`.
    """
    pieces_per_part: list[list[tuple[str, float]]] = []
    for attribute, transform in key.parts:
        outcomes: dict[str, float] = {}
        for outcome, probability in alternative.value(attribute).items():
            piece = key._piece(outcome, transform)
            outcomes[piece] = outcomes.get(piece, 0.0) + probability
        pieces_per_part.append(list(outcomes.items()))
    keys: dict[str, float] = {"": 1.0}
    for part_outcomes in pieces_per_part:
        next_keys: dict[str, float] = {}
        for prefix, prefix_prob in keys.items():
            for piece, piece_prob in part_outcomes:
                candidate = prefix + piece
                next_keys[candidate] = (
                    next_keys.get(candidate, 0.0)
                    + prefix_prob * piece_prob
                )
        keys = next_keys
    return list(keys.items())


def derived_xtuple_key_distribution(
    xtuple, key: DerivedKey, *, conditioned: bool = True
) -> list[tuple[str, float]]:
    """X-tuple key distribution under a derived key."""
    weighted: dict[str, float] = {}
    pairs = (
        xtuple.conditioned_alternatives()
        if conditioned
        else [(alt, alt.probability) for alt in xtuple.alternatives]
    )
    for alternative, weight in pairs:
        for candidate, probability in derived_alternative_key_distribution(
            alternative, key
        ):
            weighted[candidate] = (
                weighted.get(candidate, 0.0) + weight * probability
            )
    return list(weighted.items())


def derived_most_probable_key(xtuple, key: DerivedKey) -> str:
    """Modal key under a derived key (ties by first occurrence)."""
    distribution = derived_xtuple_key_distribution(xtuple, key)
    best_key, best_prob = distribution[0]
    for candidate, probability in distribution[1:]:
        if probability > best_prob + 1e-12:
            best_key, best_prob = candidate, probability
    return best_key


def phonetic_key(
    name_attribute: str = "name",
    *,
    extra_parts: Sequence[tuple[str, PartTransform]] = (),
) -> DerivedKey:
    """The standard phonetic blocking key: Soundex of the name.

    Misspelled duplicates (Tim/Tym, Stephan/Stefan) keep the same code,
    so phonetic blocks lose far fewer true matches than prefix blocks of
    comparable selectivity.
    """
    parts: list[tuple[str, PartTransform]] = [
        (name_attribute, soundex_transform)
    ]
    parts.extend(extra_parts)
    return DerivedKey(parts)


class PhoneticBlocking:
    """Blocking on the Soundex key of each x-tuple's alternatives.

    Every alternative contributes its phonetic key; an x-tuple joins
    every corresponding block once (the alternative-key discipline of
    Figure 14 applied to derived keys).
    """

    def __init__(self, key: DerivedKey | None = None) -> None:
        self._key = key if key is not None else phonetic_key()

    def blocks(self, relation) -> dict[str, list[str]]:
        """``key → member tuple ids`` with in-block dedup.

        Runs over :func:`~repro.reduction.plan.planning_view`, so
        columnar stores serve the pass from the keyed columns alone.
        """
        from repro.reduction.plan import planning_view

        blocks: dict[str, list[str]] = {}
        for xtuple in planning_view(relation, self._key.attributes):
            key_values: list[str] = []
            for alternative in xtuple.alternatives:
                for key_value, _ in derived_alternative_key_distribution(
                    alternative, self._key
                ):
                    if key_value not in key_values:
                        key_values.append(key_value)
            for key_value in key_values:
                members = blocks.setdefault(key_value, [])
                if xtuple.tuple_id not in members:
                    members.append(xtuple.tuple_id)
        return blocks

    def pairs(self, relation):
        """Within-block candidate pairs."""
        from repro.reduction.blocking import pairs_from_blocks

        return pairs_from_blocks(self.blocks(relation))

    def plan(self, relation):
        """One partition per phonetic block.

        Alternatives contribute their Soundex keys, so phonetically
        close spellings land in one block regardless of which
        alternative is true.

        >>> from repro.pdb.relations import XRelation
        >>> from repro.pdb.xtuples import TupleAlternative, XTuple
        >>> relation = XRelation("R", ("name",), [
        ...     XTuple(t, (TupleAlternative({"name": n}, 1.0),))
        ...     for t, n in [("t1", "meier"), ("t2", "meyer"), ("t3", "smith")]])
        >>> [(p.label, p.pairs) for p in PhoneticBlocking().plan(relation)]
        [('block:M600', (('t1', 't2'),))]
        """
        from repro.reduction.plan import plan_from_blocks

        return plan_from_blocks(
            self.blocks(relation),
            relation_size=len(relation),
            source=repr(self),
        )

    def __repr__(self) -> str:
        return f"PhoneticBlocking({self._key!r})"
