"""Blocking uncertain keys by clustering key distributions.

Section V-B: "Handlings for uncertain key values can be based on
clustering techniques for uncertain data (e.g., [38], [39], [40])."

We implement a leader-style clustering over *key distributions* with an
expected-distance measure, in the spirit of the UK-means family [39]:

* the distance between two uncertain keys is the expected normalized
  edit distance between their values,
  ``E[d(K1, K2)] = Σ Σ P(k1) P(k2) · d(k1, k2)``;
* greedy leader clustering assigns each x-tuple to the first cluster
  whose leader is within *radius*, or opens a new cluster — one pass,
  deterministic given the input order, ``O(n · #clusters)``.

The resulting clusters act as blocks: only tuples in the same cluster
are compared.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.pdb.relations import XRelation
from repro.reduction.blocking import pairs_from_blocks
from repro.reduction.keys import SubstringKey, xtuple_key_distribution
from repro.similarity.edit import levenshtein_distance

#: An uncertain key: outcomes with probabilities.
KeyDistribution = Sequence[tuple[str, float]]


def expected_key_distance(
    left: KeyDistribution, right: KeyDistribution
) -> float:
    """Expected normalized edit distance between two uncertain keys.

    Distances of individual key pairs are normalized by the longer key
    length, so the expectation stays in [0, 1]; two certain equal keys
    have distance 0.
    """
    total = 0.0
    for left_key, left_prob in left:
        for right_key, right_prob in right:
            longest = max(len(left_key), len(right_key))
            if longest == 0:
                distance = 0.0
            else:
                distance = (
                    levenshtein_distance(left_key, right_key) / longest
                )
            total += left_prob * right_prob * distance
    left_mass = sum(p for _, p in left)
    right_mass = sum(p for _, p in right)
    if left_mass <= 0.0 or right_mass <= 0.0:
        raise ValueError("key distributions need positive mass")
    return total / (left_mass * right_mass)


class UncertainKeyClusteringBlocking:
    """Leader clustering of uncertain keys as a blocking strategy.

    Parameters
    ----------
    key:
        Key specification (distributions built conditioned on presence).
    radius:
        Maximum expected key distance to a cluster leader; smaller radius
        means more, tighter blocks.  Must lie in [0, 1].
    """

    def __init__(self, key: SubstringKey, *, radius: float = 0.35) -> None:
        if not 0.0 <= radius <= 1.0:
            raise ValueError(f"radius must lie in [0, 1], got {radius}")
        self._key = key
        self._radius = radius

    def clusters(self, relation: XRelation) -> dict[str, list[str]]:
        """``leader tuple id → member tuple ids`` (leaders included)."""
        leaders: list[tuple[str, KeyDistribution]] = []
        clusters: dict[str, list[str]] = {}
        for xtuple in relation:
            distribution = xtuple_key_distribution(xtuple, self._key)
            assigned = False
            for leader_id, leader_distribution in leaders:
                if (
                    expected_key_distance(distribution, leader_distribution)
                    <= self._radius
                ):
                    clusters[leader_id].append(xtuple.tuple_id)
                    assigned = True
                    break
            if not assigned:
                leaders.append((xtuple.tuple_id, distribution))
                clusters[xtuple.tuple_id] = [xtuple.tuple_id]
        return clusters

    def pairs(self, relation: XRelation) -> Iterator[tuple[str, str]]:
        """Within-cluster candidate pairs."""
        return pairs_from_blocks(self.clusters(relation))

    def __repr__(self) -> str:
        return (
            f"UncertainKeyClusteringBlocking(key={self._key!r}, "
            f"radius={self._radius})"
        )
