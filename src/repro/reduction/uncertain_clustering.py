"""Blocking uncertain keys by clustering key distributions.

Section V-B: "Handlings for uncertain key values can be based on
clustering techniques for uncertain data (e.g., [38], [39], [40])."

We implement a leader-style clustering over *key distributions* with an
expected-distance measure, in the spirit of the UK-means family [39]:

* the distance between two uncertain keys is the expected normalized
  edit distance between their values,
  ``E[d(K1, K2)] = Σ Σ P(k1) P(k2) · d(k1, k2)``;
* greedy leader clustering assigns each x-tuple to the first cluster
  whose leader is within *radius*, or opens a new cluster — one pass,
  deterministic given the input order, ``O(n · #clusters)``.

The resulting clusters act as blocks: only tuples in the same cluster
are compared.

The inner key-pair distance runs through the banded Levenshtein kernel
(exact without a cutoff, so results match the reference DP bit for bit)
and is memoized in a :class:`~repro.similarity.kernels.SimilarityCache`:
the same key strings recur across distributions and leader comparisons,
so clustering re-derives each distinct key pair only once.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence

from repro.pdb.relations import XRelation
from repro.reduction.blocking import pairs_from_blocks
from repro.reduction.keys import SubstringKey, xtuple_key_distribution
from repro.reduction.plan import (
    CandidatePlan,
    plan_from_blocks,
    planning_view,
)
from repro.similarity.kernels import SimilarityCache, banded_levenshtein

#: An uncertain key: outcomes with probabilities.
KeyDistribution = Sequence[tuple[str, float]]

#: A normalized distance on concrete key strings.
KeyDistance = Callable[[str, str], float]


def normalized_key_distance(left: str, right: str) -> float:
    """Edit distance normalized by the longer key, via the banded kernel.

    Without a cutoff the banded kernel computes the exact Levenshtein
    distance (property-tested against the reference DP), so this equals
    the seed's ``levenshtein_distance(l, r) / max(len)`` bit for bit
    while skipping trivial prefixes/suffixes faster.
    """
    longest = max(len(left), len(right))
    if longest == 0:
        return 0.0
    return banded_levenshtein(left, right) / longest


def expected_key_distance(
    left: KeyDistribution,
    right: KeyDistribution,
    *,
    distance: KeyDistance | None = None,
) -> float:
    """Expected normalized edit distance between two uncertain keys.

    Distances of individual key pairs are normalized by the longer key
    length, so the expectation stays in [0, 1]; two certain equal keys
    have distance 0.  Pass *distance* to reuse a memoized kernel (e.g. a
    :class:`~repro.similarity.kernels.SimilarityCache` with
    ``reflexive_value=0.0``) across many expectation evaluations.
    """
    if distance is None:
        distance = normalized_key_distance
    total = 0.0
    for left_key, left_prob in left:
        for right_key, right_prob in right:
            total += left_prob * right_prob * distance(left_key, right_key)
    left_mass = sum(p for _, p in left)
    right_mass = sum(p for _, p in right)
    if left_mass <= 0.0 or right_mass <= 0.0:
        raise ValueError("key distributions need positive mass")
    return total / (left_mass * right_mass)


class UncertainKeyClusteringBlocking:
    """Leader clustering of uncertain keys as a blocking strategy.

    Parameters
    ----------
    key:
        Key specification (distributions built conditioned on presence).
    radius:
        Maximum expected key distance to a cluster leader; smaller radius
        means more, tighter blocks.  Must lie in [0, 1].
    cache:
        Memoization of concrete key-pair distances.  ``True`` (default)
        creates a private :class:`SimilarityCache` over the banded
        kernel; pass an existing distance-configured cache
        (``reflexive_value=0.0``) to share one, or ``False``/``None`` to
        recompute every pair.  Caching never changes a cluster — only
        how often the edit-distance DP actually runs.
    """

    def __init__(
        self,
        key: SubstringKey,
        *,
        radius: float = 0.35,
        cache: SimilarityCache | bool | None = True,
    ) -> None:
        if not 0.0 <= radius <= 1.0:
            raise ValueError(f"radius must lie in [0, 1], got {radius}")
        self._key = key
        self._radius = radius
        self._cache: SimilarityCache | None = None
        if isinstance(cache, SimilarityCache):
            self._cache = cache
        elif cache:
            self._cache = SimilarityCache(
                normalized_key_distance, reflexive_value=0.0
            )

    @property
    def cache(self) -> SimilarityCache | None:
        """The key-distance memo, when caching is enabled."""
        return self._cache

    def _distance(self) -> KeyDistance:
        return self._cache if self._cache is not None else normalized_key_distance

    def clusters(self, relation: XRelation) -> dict[str, list[str]]:
        """``leader tuple id → member tuple ids`` (leaders included)."""
        distance = self._distance()
        leaders: list[tuple[str, KeyDistribution]] = []
        clusters: dict[str, list[str]] = {}
        for xtuple in planning_view(relation, self._key.attributes):
            distribution = xtuple_key_distribution(xtuple, self._key)
            assigned = False
            for leader_id, leader_distribution in leaders:
                if (
                    expected_key_distance(
                        distribution,
                        leader_distribution,
                        distance=distance,
                    )
                    <= self._radius
                ):
                    clusters[leader_id].append(xtuple.tuple_id)
                    assigned = True
                    break
            if not assigned:
                leaders.append((xtuple.tuple_id, distribution))
                clusters[xtuple.tuple_id] = [xtuple.tuple_id]
        return clusters

    def pairs(self, relation: XRelation) -> Iterator[tuple[str, str]]:
        """Within-cluster candidate pairs."""
        return pairs_from_blocks(self.clusters(relation))

    def plan(self, relation: XRelation) -> CandidatePlan:
        """One partition per cluster, labeled by its leader tuple.

        >>> from repro.pdb.relations import XRelation
        >>> from repro.pdb.xtuples import TupleAlternative, XTuple
        >>> from repro.reduction.keys import SubstringKey
        >>> relation = XRelation("R", ("name",), [
        ...     XTuple(t, (TupleAlternative({"name": n}, 1.0),))
        ...     for t, n in [("t1", "anna"), ("t2", "anne"), ("t3", "zoe")]])
        >>> reducer = UncertainKeyClusteringBlocking(
        ...     SubstringKey([("name", 4)]), radius=0.4)
        >>> [(p.label, p.pairs) for p in reducer.plan(relation)]
        [('cluster:t1', (('t1', 't2'),))]
        """
        return plan_from_blocks(
            self.clusters(relation),
            relation_size=len(relation),
            source=repr(self),
            prefix="cluster",
        )

    def __repr__(self) -> str:
        return (
            f"UncertainKeyClusteringBlocking(key={self._key!r}, "
            f"radius={self._radius})"
        )
