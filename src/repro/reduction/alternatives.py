"""Sorting alternatives (Section V-A.3, Figures 11 and 12).

"Key values for all (or the most probable) tuple alternatives can be
created.  In this way, each tuple can have multiple key values. …  the
alternatives' key values can be sorted while keeping references to the
tuples they belong to.  As a consequence, each tuple appears in the
sorted relation for multiple times."

Two refinements from the paper, both implemented here:

* **neighbor dedup** — "if two neighboring key values are referencing to
  the same tuple, one of this values can be omitted" (the struck-through
  entries of Figure 11);
* **matching matrix** — "multiple matchings of the same tuple pair …
  can be avoided by storing already executed matchings" (Figure 12),
  provided by :class:`MatchingMatrix` and already folded into
  :func:`repro.reduction.snm.window_pairs`.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.pdb.relations import XRelation
from repro.pdb.xtuples import XTuple
from repro.reduction.keys import (
    SubstringKey,
    alternative_key_distribution,
)
from repro.reduction.plan import (
    CandidatePartition,
    CandidatePlan,
    plan_from_window,
    planning_view,
)
from repro.reduction.snm import (
    split_window_partition_by_key,
    window_pairs,
)


class MatchingMatrix:
    """The Figure-12 matrix: which pairs were already matched.

    A symmetric boolean structure over tuple ids; pairs are normalized so
    ``record`` / ``seen`` are order-insensitive.
    """

    def __init__(self) -> None:
        self._seen: set[tuple[str, str]] = set()

    @staticmethod
    def _normalize(left: str, right: str) -> tuple[str, str]:
        return (left, right) if left <= right else (right, left)

    def seen(self, left: str, right: str) -> bool:
        """Whether the pair was recorded before."""
        return self._normalize(left, right) in self._seen

    def record(self, left: str, right: str) -> bool:
        """Record the pair; returns ``True`` if it was new."""
        pair = self._normalize(left, right)
        if pair in self._seen:
            return False
        self._seen.add(pair)
        return True

    def __len__(self) -> int:
        return len(self._seen)

    def __contains__(self, pair: tuple[str, str]) -> bool:
        return self._normalize(*pair) in self._seen

    def pairs(self) -> frozenset[tuple[str, str]]:
        """All recorded pairs."""
        return frozenset(self._seen)


class AlternativeSorting:
    """The sorting-alternatives strategy as a pair generator.

    Parameters
    ----------
    key:
        Sorting-key specification.
    window:
        SNM window size (≥ 2).
    all_alternatives:
        ``True`` (default) creates keys for *all* alternatives; ``False``
        uses only each x-tuple's most probable alternative — the paper
        allows both ("all (or the most probable)").
    neighbor_dedup:
        Whether to drop a sorted entry whose predecessor references the
        same tuple (Figure 11's struck-through entries).
    """

    def __init__(
        self,
        key: SubstringKey,
        window: int = 3,
        *,
        all_alternatives: bool = True,
        neighbor_dedup: bool = True,
    ) -> None:
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        self._key = key
        self._window = window
        self._all_alternatives = all_alternatives
        self._neighbor_dedup = neighbor_dedup

    # ------------------------------------------------------------------
    # Entry construction
    # ------------------------------------------------------------------

    def entries_for_xtuple(self, xtuple: XTuple) -> list[tuple[str, str]]:
        """``(key value, tuple id)`` entries contributed by one x-tuple.

        Every alternative contributes its (possibly several, if attribute
        values are uncertain) key values; duplicate keys within one
        x-tuple are collapsed — matching a tuple with itself is
        meaningless.
        """
        alternatives: Sequence = xtuple.alternatives
        if not self._all_alternatives:
            best = max(alternatives, key=lambda alt: alt.probability)
            alternatives = [best]
        keys: list[str] = []
        for alternative in alternatives:
            for key_value, _ in alternative_key_distribution(
                alternative, self._key
            ):
                keys.append(key_value)
        deduped: list[str] = []
        for key_value in keys:
            if key_value not in deduped:
                deduped.append(key_value)
        return [(key_value, xtuple.tuple_id) for key_value in deduped]

    def sorted_entries(self, relation: XRelation) -> list[tuple[str, str]]:
        """All entries of the relation in key order (Figure 11, right).

        The sort is stable, so each tuple's alternatives keep their
        relative order under equal keys — the layout the figure shows.
        """
        entries: list[tuple[str, str]] = []
        for xtuple in planning_view(relation, self._key.attributes):
            entries.extend(self.entries_for_xtuple(xtuple))
        entries.sort(key=lambda entry: entry[0])
        return entries

    def deduped_entries(self, relation: XRelation) -> list[tuple[str, str]]:
        """Sorted entries after neighbor dedup."""
        entries = self.sorted_entries(relation)
        if not self._neighbor_dedup:
            return entries
        kept: list[tuple[str, str]] = []
        for entry in entries:
            if kept and kept[-1][1] == entry[1]:
                continue
            kept.append(entry)
        return kept

    # ------------------------------------------------------------------
    # Pair generation
    # ------------------------------------------------------------------

    def pairs(self, relation: XRelation) -> Iterator[tuple[str, str]]:
        """Window pairs over the deduped entry sequence.

        Repeated tuple appearances make the matching matrix necessary;
        :func:`window_pairs` already suppresses self-pairs and repeats.
        """
        ordered_ids = [tuple_id for _, tuple_id in self.deduped_entries(relation)]
        return window_pairs(ordered_ids, self._window)

    def plan(self, relation: XRelation) -> CandidatePlan:
        """Spans of the sorted *entry* sequence as partitions.

        Entries repeat tuple ids (one per alternative key); the plan
        builder supplies the Figure-12 matching matrix globally, so a
        pair reachable from several spans is claimed by the first.

        >>> from repro.pdb.relations import XRelation
        >>> from repro.pdb.xtuples import TupleAlternative, XTuple
        >>> from repro.reduction.keys import SubstringKey
        >>> relation = XRelation("R", ("name",), [
        ...     XTuple("t1", (TupleAlternative({"name": "anna"}, 0.6),
        ...                   TupleAlternative({"name": "zoe"}, 0.4))),
        ...     XTuple("t2", (TupleAlternative({"name": "anne"}, 1.0),)),
        ...     XTuple("t3", (TupleAlternative({"name": "zara"}, 1.0),))])
        >>> reducer = AlternativeSorting(SubstringKey([("name", 1)]), window=2)
        >>> plan = reducer.plan(relation)
        >>> [p.label for p in plan]
        ['entries[0:4]']
        >>> list(plan.pairs())  # t1 sorts as both 'a…' and 'z…'
        [('t1', 't2'), ('t1', 't3')]
        """
        ordered_ids = [
            tuple_id for _, tuple_id in self.deduped_entries(relation)
        ]
        return plan_from_window(
            ordered_ids,
            self._window,
            relation_size=len(relation),
            source=repr(self),
            label="entries",
        )

    def split_partition(
        self,
        relation,
        partition: "CandidatePartition",
        *,
        max_pairs: int,
    ) -> "list[CandidatePartition] | None":
        """Skew hook: subdivide one oversized entry span by key range.

        Members bucket by their *most probable* key — a locality proxy
        for the multi-entry sort positions an x-tuple occupies; the
        regrouping is an exact pair cover either way, so decisions
        never change (see :func:`split_window_partition_by_key`).
        """
        return split_window_partition_by_key(
            relation, partition, self._key, max_pairs=max_pairs
        )

    def __repr__(self) -> str:
        return (
            f"AlternativeSorting(key={self._key!r}, window={self._window}, "
            f"all={self._all_alternatives}, dedup={self._neighbor_dedup})"
        )
