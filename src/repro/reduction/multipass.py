"""Multi-pass Sorted Neighborhood over possible worlds (Section V-A.1).

"In each pass the key values are created for exactly one possible world.
In this way, the key values are always certain and the sorted
neighborhood method can be applied as usual."  Only worlds containing all
tuples are considered (tuple membership must not influence detection).

Three world sources are supported:

* all full worlds (exact, exponential — fine for paper-sized examples),
* the *k* most probable full worlds (the naive reduction),
* *k* greedily diversified worlds
  (:func:`repro.reduction.world_selection.select_diverse_worlds`) —
  the selection strategy the paper calls for.

The emitted candidate set is the union of the per-pass window pairs.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.pdb.relations import XRelation
from repro.pdb.worlds import (
    PossibleWorld,
    enumerate_full_worlds,
)
from repro.reduction.keys import SubstringKey
from repro.reduction.plan import (
    CandidatePlan,
    PlanBuilder,
    add_window_spans,
    planning_view,
)
from repro.reduction.snm import sort_by_key, window_pairs
from repro.reduction.world_selection import (
    select_diverse_worlds,
    select_probable_worlds,
)


class WorldSelection:
    """World-subset policies for multi-pass strategies."""

    ALL = "all"
    MOST_PROBABLE = "most_probable"
    DIVERSE = "diverse"

    CHOICES = (ALL, MOST_PROBABLE, DIVERSE)


class MultiPassSNM:
    """Sorted Neighborhood repeated over selected possible worlds.

    Parameters
    ----------
    key:
        Sorting-key specification.
    window:
        SNM window size (≥ 2).
    selection:
        One of :class:`WorldSelection`'s policies.
    world_count:
        Number of worlds for the non-exhaustive policies.
    diversity_weight:
        λ of the diverse selector.
    max_worlds:
        Safety bound for exhaustive full-world enumeration.
    """

    def __init__(
        self,
        key: SubstringKey,
        window: int = 3,
        *,
        selection: str = WorldSelection.ALL,
        world_count: int = 3,
        diversity_weight: float = 0.5,
        max_worlds: int = 100_000,
    ) -> None:
        if selection not in WorldSelection.CHOICES:
            raise ValueError(
                f"unknown world selection {selection!r}; "
                f"expected one of {WorldSelection.CHOICES}"
            )
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if world_count < 1:
            raise ValueError(f"world_count must be >= 1, got {world_count}")
        self._key = key
        self._window = window
        self._selection = selection
        self._world_count = world_count
        self._diversity_weight = diversity_weight
        self._max_worlds = max_worlds

    def select_worlds(self, relation: XRelation) -> list[PossibleWorld]:
        """The worlds one pass will run over (full worlds only)."""
        # Pass the relation itself: storage backends have no ``.xtuples``
        # property.  Enumeration still materializes the x-tuple list —
        # acceptable, since world passes are only tractable for small
        # relations anyway.
        worlds = enumerate_full_worlds(
            relation, max_worlds=self._max_worlds
        )
        if self._selection == WorldSelection.ALL:
            return worlds
        if self._selection == WorldSelection.MOST_PROBABLE:
            return select_probable_worlds(worlds, self._world_count)
        return select_diverse_worlds(
            worlds,
            self._world_count,
            diversity_weight=self._diversity_weight,
        )

    def sorted_ids_for_world(
        self, relation: XRelation, world: PossibleWorld
    ) -> list[str]:
        """The pass ordering for one world (Figure 9's sorted columns).

        Key values are created from the world's concrete alternatives;
        uncertain attribute values *within* an alternative are resolved to
        their most probable outcome so the key stays certain, mirroring
        the paper's premise that a world fixes each tuple's appearance.
        """
        keyed: list[tuple[str, str]] = []
        for xtuple in planning_view(relation, self._key.attributes):
            index = world.alternative_index(xtuple.tuple_id)
            if index is None:
                continue
            alternative = xtuple.alternatives[index]
            assignment = {
                attribute: alternative.value(attribute).most_probable()
                for attribute in alternative.attributes
            }
            keyed.append(
                (self._key.for_assignment(assignment), xtuple.tuple_id)
            )
        return sort_by_key(keyed)

    def pairs_for_world(
        self, relation: XRelation, world: PossibleWorld
    ) -> Iterator[tuple[str, str]]:
        """Window pairs of a single pass."""
        return window_pairs(
            self.sorted_ids_for_world(relation, world), self._window
        )

    def pairs(self, relation: XRelation) -> Iterator[tuple[str, str]]:
        """Union of the window pairs over all selected worlds."""
        emitted: set[tuple[str, str]] = set()
        for world in self.select_worlds(relation):
            for pair in self.pairs_for_world(relation, world):
                if pair not in emitted:
                    emitted.add(pair)
                    yield pair

    def plan(self, relation: XRelation) -> CandidatePlan:
        """Window spans per world pass; later passes keep only new pairs.

        Each selected possible world contributes one SNM pass over its
        own certain sort order; the shared plan builder keeps a pair in
        the first pass that reaches it, so the concatenated plan equals
        the multi-pass union stream.

        >>> from repro.pdb.relations import XRelation
        >>> from repro.pdb.xtuples import TupleAlternative, XTuple
        >>> from repro.reduction.keys import SubstringKey
        >>> relation = XRelation("R", ("name",), [
        ...     XTuple("t1", (TupleAlternative({"name": "anna"}, 0.6),
        ...                   TupleAlternative({"name": "hanna"}, 0.4))),
        ...     XTuple("t2", (TupleAlternative({"name": "anne"}, 1.0),))])
        >>> reducer = MultiPassSNM(SubstringKey([("name", 2)]), window=2,
        ...                        selection="most_probable", world_count=1)
        >>> [(p.label, p.pairs) for p in reducer.plan(relation)]
        [('world0[0:2]', (('t1', 't2'),))]
        """
        builder = PlanBuilder()
        for index, world in enumerate(self.select_worlds(relation)):
            add_window_spans(
                builder,
                self.sorted_ids_for_world(relation, world),
                self._window,
                label=f"world{index}",
            )
        return builder.build(
            relation_size=len(relation), source=repr(self)
        )

    def passes(
        self, relation: XRelation
    ) -> list[tuple[PossibleWorld, list[str]]]:
        """Per-world orderings, for inspection and the Figure-9 bench."""
        return [
            (world, self.sorted_ids_for_world(relation, world))
            for world in self.select_worlds(relation)
        ]

    def __repr__(self) -> str:
        return (
            f"MultiPassSNM(key={self._key!r}, window={self._window}, "
            f"selection={self._selection!r}, k={self._world_count})"
        )
