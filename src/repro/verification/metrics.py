"""Verification metrics (Section III-E) and reduction quality measures.

"The effectiveness of the applied identification is checked in terms of
recall, precision, false negative percentage, false positive percentage
and F1-measure."

Matching quality is evaluated on *pairs*: the gold standard is the set of
true duplicate pairs; the prediction is the decision per compared pair.
Possible matches (the set P) can be scored three ways — excluded,
counted as matches (optimistic clerical review) or counted as non-matches
(pessimistic) — because the paper keeps clerical review outside the
automatic decision.

Search-space reduction is evaluated by the standard pair:

* **reduction ratio** — fraction of the full pair space pruned away;
* **pairs completeness** — fraction of true matches surviving pruning
  ("low risk of loosing matches", Section V).
"""

from __future__ import annotations

from collections.abc import Collection, Iterable
from dataclasses import dataclass

from repro.matching.decision.base import MatchStatus
from repro.matching.pipeline import DetectionResult

Pair = tuple[str, str]


def _ordered(pair: Pair) -> Pair:
    left, right = pair
    return (left, right) if left <= right else (right, left)


def normalize_pairs(pairs: Iterable[Pair]) -> frozenset[Pair]:
    """Normalize unordered pairs for set arithmetic."""
    return frozenset(_ordered(pair) for pair in pairs)


class PossiblePolicy:
    """How possible matches count in quality metrics."""

    EXCLUDE = "exclude"
    AS_MATCH = "as_match"
    AS_UNMATCH = "as_unmatch"

    ALL = (EXCLUDE, AS_MATCH, AS_UNMATCH)


@dataclass(frozen=True)
class QualityReport:
    """Confusion counts and the derived Section III-E measures.

    ``false_negative_rate`` is FN / (TP + FN) — the fraction of true
    duplicate pairs missed; ``false_positive_rate`` is FP / (FP + TN) —
    the fraction of true non-duplicate pairs wrongly declared, following
    the percentages of Batini & Scannapieco [22].
    """

    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int
    possible_pairs: int = 0

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 1.0 when nothing was declared."""
        declared = self.true_positives + self.false_positives
        return self.true_positives / declared if declared else 1.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 1.0 when no true matches exist."""
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else 1.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2.0 * p * r / (p + r) if (p + r) > 0.0 else 0.0

    @property
    def false_negative_rate(self) -> float:
        """FN / (TP + FN) = 1 - recall."""
        actual = self.true_positives + self.false_negatives
        return self.false_negatives / actual if actual else 0.0

    @property
    def false_positive_rate(self) -> float:
        """FP / (FP + TN)."""
        negatives = self.false_positives + self.true_negatives
        return self.false_positives / negatives if negatives else 0.0

    @property
    def accuracy(self) -> float:
        """(TP + TN) / all decided pairs."""
        total = (
            self.true_positives
            + self.false_positives
            + self.true_negatives
            + self.false_negatives
        )
        return (
            (self.true_positives + self.true_negatives) / total
            if total
            else 1.0
        )

    def as_dict(self) -> dict[str, float]:
        """All measures as a flat mapping (for table printers)."""
        return {
            "tp": self.true_positives,
            "fp": self.false_positives,
            "tn": self.true_negatives,
            "fn": self.false_negatives,
            "possible": self.possible_pairs,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "fn_rate": self.false_negative_rate,
            "fp_rate": self.false_positive_rate,
            "accuracy": self.accuracy,
        }


def evaluate_pairs(
    predicted_matches: Iterable[Pair],
    true_matches: Iterable[Pair],
    compared_pairs: Iterable[Pair],
    *,
    possible_matches: Iterable[Pair] = (),
    possible_policy: str = PossiblePolicy.EXCLUDE,
) -> QualityReport:
    """Score predicted match pairs against the gold standard.

    Only *compared_pairs* enter the confusion matrix: pairs pruned by
    search-space reduction are invisible to the decision model and are
    scored separately via :func:`pairs_completeness`.  True matches that
    were pruned therefore do **not** count as false negatives here; use
    :func:`evaluate_detection` for an end-to-end score that does charge
    pruned matches as misses.
    """
    if possible_policy not in PossiblePolicy.ALL:
        raise ValueError(f"unknown possible policy {possible_policy!r}")
    predicted = normalize_pairs(predicted_matches)
    possible = normalize_pairs(possible_matches)
    gold = normalize_pairs(true_matches)
    compared = normalize_pairs(compared_pairs)

    if possible_policy == PossiblePolicy.AS_MATCH:
        predicted = predicted | possible
        possible = frozenset()
    elif possible_policy == PossiblePolicy.AS_UNMATCH:
        possible = frozenset()

    scored = compared - possible
    tp = len(predicted & gold & scored)
    fp = len((predicted - gold) & scored)
    fn = len((gold & scored) - predicted)
    tn = len(scored) - tp - fp - fn
    return QualityReport(
        true_positives=tp,
        false_positives=fp,
        true_negatives=tn,
        false_negatives=fn,
        possible_pairs=len(possible & compared),
    )


def evaluate_detection(
    result: DetectionResult,
    true_matches: Iterable[Pair],
    *,
    possible_policy: str = PossiblePolicy.EXCLUDE,
) -> QualityReport:
    """End-to-end score of a :class:`DetectionResult`.

    True matches that never reached the decision model (pruned by
    reduction) are charged as false negatives — the honest end-to-end
    reading of Section III-E's recall.
    """
    gold = normalize_pairs(true_matches)
    compared = normalize_pairs(result.compared_pairs)
    report = evaluate_pairs(
        result.matches,
        gold & compared,
        compared,
        possible_matches=result.possible_matches,
        possible_policy=possible_policy,
    )
    pruned_misses = len(gold - compared)
    return QualityReport(
        true_positives=report.true_positives,
        false_positives=report.false_positives,
        true_negatives=report.true_negatives,
        false_negatives=report.false_negatives + pruned_misses,
        possible_pairs=report.possible_pairs,
    )


# ----------------------------------------------------------------------
# Search-space reduction quality (Section V)
# ----------------------------------------------------------------------


def total_pair_count(relation_size: int) -> int:
    """``n(n-1)/2`` — the unreduced search-space size."""
    if relation_size < 0:
        raise ValueError(f"relation size must be >= 0, got {relation_size}")
    return relation_size * (relation_size - 1) // 2


def reduction_ratio(
    candidate_pairs: Collection[Pair], relation_size: int
) -> float:
    """1 − |candidates| / |all pairs| — higher means more pruning."""
    total = total_pair_count(relation_size)
    if total == 0:
        return 0.0
    return 1.0 - len(normalize_pairs(candidate_pairs)) / total


def pairs_completeness(
    candidate_pairs: Collection[Pair], true_matches: Collection[Pair]
) -> float:
    """|candidates ∩ true matches| / |true matches| — recall ceiling."""
    gold = normalize_pairs(true_matches)
    if not gold:
        return 1.0
    candidates = normalize_pairs(candidate_pairs)
    return len(candidates & gold) / len(gold)


def reduction_f1(
    candidate_pairs: Collection[Pair],
    true_matches: Collection[Pair],
    relation_size: int,
) -> float:
    """Harmonic mean of reduction ratio and pairs completeness."""
    rr = reduction_ratio(candidate_pairs, relation_size)
    pc = pairs_completeness(candidate_pairs, true_matches)
    return 2.0 * rr * pc / (rr + pc) if (rr + pc) > 0.0 else 0.0
