"""Verification (Section III-E): quality metrics and threshold tuning."""

from repro.verification.tuning import (
    SweepPoint,
    best_f1_threshold,
    candidate_thresholds,
    recommend_thresholds,
    threshold_sweep,
)
from repro.verification.metrics import (
    PossiblePolicy,
    QualityReport,
    evaluate_detection,
    evaluate_pairs,
    normalize_pairs,
    pairs_completeness,
    reduction_f1,
    reduction_ratio,
    total_pair_count,
)

__all__ = [
    "PossiblePolicy",
    "QualityReport",
    "SweepPoint",
    "best_f1_threshold",
    "candidate_thresholds",
    "evaluate_detection",
    "evaluate_pairs",
    "normalize_pairs",
    "pairs_completeness",
    "recommend_thresholds",
    "reduction_f1",
    "reduction_ratio",
    "threshold_sweep",
    "total_pair_count",
]
