"""Threshold tuning: the Section III-E verification feedback loop.

"If the effectiveness is not satisfactory, duplicate detection is
repeated with other, better suitable thresholds or methods."  This
module closes that loop: given the similarities the decision model
produced for a labeled calibration set, it sweeps candidate thresholds
and recommends T_μ / T_λ.

Two entry points:

* :func:`threshold_sweep` — precision/recall/F1 at every candidate
  match-threshold (a precision-recall curve over the similarity scale);
* :func:`recommend_thresholds` — pick T_μ maximizing F1 and T_λ from a
  target recall of the possible band (pairs the clerical review should
  still catch).

Both operate on plain ``(similarity, is_true_match)`` samples, so they
work for every decision-model family — normalized certainties and
unbounded matching weights alike.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.matching.decision.base import ThresholdClassifier

#: One calibration sample: the model's similarity and the gold label.
Sample = tuple[float, bool]


@dataclass(frozen=True)
class SweepPoint:
    """Quality at one candidate match threshold (matches are > threshold)."""

    threshold: float
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        declared = self.true_positives + self.false_positives
        return self.true_positives / declared if declared else 1.0

    @property
    def recall(self) -> float:
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) > 0 else 0.0

    def as_dict(self) -> dict[str, float]:
        """Flatten for table rendering."""
        return {
            "threshold": self.threshold,
            "tp": self.true_positives,
            "fp": self.false_positives,
            "fn": self.false_negatives,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
        }


def _clean(samples: Iterable[Sample]) -> list[Sample]:
    cleaned = [
        (float(similarity), bool(label)) for similarity, label in samples
    ]
    if not cleaned:
        raise ValueError("threshold tuning needs calibration samples")
    return cleaned


def candidate_thresholds(samples: Sequence[Sample]) -> list[float]:
    """Midpoints between adjacent distinct similarity values.

    Sweeping midpoints covers every achievable confusion matrix without
    redundant candidates; infinite similarities are clamped out (they
    classify as matches under any finite threshold).
    """
    finite = sorted(
        {similarity for similarity, _ in samples if math.isfinite(similarity)}
    )
    if not finite:
        return [0.0]
    candidates = [finite[0] - 1.0]
    candidates.extend(
        (low + high) / 2.0 for low, high in zip(finite, finite[1:])
    )
    candidates.append(finite[-1] + 1.0)
    return candidates


def threshold_sweep(samples: Iterable[Sample]) -> list[SweepPoint]:
    """Precision/recall/F1 at every candidate threshold.

    ``O(n log n)``: samples are sorted once and the confusion counts are
    maintained incrementally while walking the candidates upward.
    """
    cleaned = _clean(samples)
    ordered = sorted(cleaned, key=lambda sample: sample[0])
    total_true = sum(1 for _, label in ordered if label)

    points: list[SweepPoint] = []
    index = 0
    passed_true = 0
    for threshold in candidate_thresholds(cleaned):
        while index < len(ordered) and ordered[index][0] <= threshold:
            if ordered[index][1]:
                passed_true += 1
            index += 1
        tp = total_true - passed_true
        fp = (len(ordered) - index) - tp
        fn = passed_true
        points.append(SweepPoint(threshold, tp, fp, fn))
    return points


def best_f1_threshold(samples: Iterable[Sample]) -> SweepPoint:
    """The sweep point with maximal F1 (ties: highest threshold)."""
    points = threshold_sweep(samples)
    return max(points, key=lambda point: (point.f1, point.threshold))


def recommend_thresholds(
    samples: Iterable[Sample],
    *,
    review_recall: float = 0.95,
) -> ThresholdClassifier:
    """Recommend (T_μ, T_λ) from labeled calibration samples.

    * ``T_μ`` maximizes F1 of the automatic match decision;
    * ``T_λ`` is the largest threshold at which the match+possible bands
      together still reach *review_recall* of the true matches — the
      band below T_μ is what clerical review sees (Figure 2).
    """
    if not 0.0 < review_recall <= 1.0:
        raise ValueError(
            f"review_recall must lie in (0, 1], got {review_recall}"
        )
    cleaned = _clean(samples)
    t_mu = best_f1_threshold(cleaned).threshold

    true_similarities = sorted(
        similarity for similarity, label in cleaned if label
    )
    if not true_similarities:
        return ThresholdClassifier(t_mu, t_mu)
    # Largest T_lambda such that at least review_recall of true matches
    # lie at or above it.
    missed_allowed = int((1.0 - review_recall) * len(true_similarities))
    t_lambda = true_similarities[missed_allowed] - 1e-12
    t_lambda = min(t_lambda, t_mu)
    return ThresholdClassifier(t_mu, t_lambda)
